package lrec

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// readLog returns the raw bytes of dir's log.
func readLog(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// logSize stats dir's log.
func logSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestTornTailRepairHeadline demonstrates the headline bug scenario: a crash
// mid-append leaves a torn frame at the log tail; the store is reopened and
// written to again; a second reopen must see those new writes. Before the
// fix, Open left the torn bytes in place and appended after them, so the
// second replay stopped at the old tear and silently dropped every
// subsequent acknowledged write.
func TestTornTailRepairHeadline(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("r1", "Gochi", "Cupertino")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("r2", "Birk's", "Santa Clara")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: chop bytes off the tail, tearing r2's frame.
	data := readLog(t, dir)
	if err := os.WriteFile(filepath.Join(dir, logName), data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len after tear = %d, want 1", s2.Len())
	}
	rec := s2.Recovery()
	if !rec.TornTail || rec.TruncatedBytes == 0 {
		t.Errorf("recovery = %+v, want torn tail with truncated bytes", rec)
	}
	if got := logSize(t, dir); got != int64(len(data)-7)-rec.TruncatedBytes {
		t.Errorf("log size %d after repair, want %d", got, int64(len(data)-7)-rec.TruncatedBytes)
	}
	// The acknowledged write that must survive the next crash-free reopen.
	if err := s2.Put(testRecord("r3", "Pizza", "San Jose")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Fatalf("Len after second reopen = %d, want 2 (r3 lost: the torn tail was not repaired)", s3.Len())
	}
	if _, err := s3.Get("r1"); err != nil {
		t.Error("r1 lost")
	}
	if _, err := s3.Get("r3"); err != nil {
		t.Error("r3 lost — acknowledged write discarded after torn-tail reopen")
	}
	if s3.Recovery().TornTail {
		t.Error("second reopen reports a torn tail; the first should have repaired it")
	}
}

// crashScript is the deterministic op sequence the crash-at-every-point
// harness replays; it exercises inserts, overwrites, deletes, and multibyte
// values so frames vary in size and content.
type scriptOp struct {
	del  bool
	id   string
	name string
}

var crashScript = []scriptOp{
	{id: "a", name: "Gochi"},
	{id: "b", name: "Birk's"},
	{id: "a", name: "Gochi Japanese Fusion Tapas"},
	{del: true, id: "b"},
	{id: "c", name: "café 饺子馆 🥟"},
	{id: "b", name: "back again"},
	{del: true, id: "a"},
	{id: "d", name: "Ñoño's"},
}

// applyScriptPrefix returns the expected live id->name map after the first k
// script ops.
func applyScriptPrefix(k int) map[string]string {
	m := map[string]string{}
	for _, op := range crashScript[:k] {
		if op.del {
			delete(m, op.id)
		} else {
			m[op.id] = op.name
		}
	}
	return m
}

func assertState(t *testing.T, s *Store, want map[string]string, ctx string) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("%s: Len = %d, want %d", ctx, s.Len(), len(want))
	}
	for id, name := range want {
		got, err := s.Get(id)
		if err != nil {
			t.Fatalf("%s: missing %q: %v", ctx, id, err)
		}
		if got.Get("name") != name {
			t.Fatalf("%s: %q name = %q, want %q", ctx, id, got.Get("name"), name)
		}
	}
}

// TestCrashAtEveryPoint is the acceptance harness: it generates a log from a
// scripted op sequence, then for EVERY truncation point of that log it
// simulates a crash (copy the prefix into a fresh dir), reopens, and asserts
// (1) the recovered state is exactly the state after the last whole frame —
// a valid prefix of the op history, never a mix — and (2) a write made after
// recovery survives another reopen, i.e. no acknowledged write is ever lost
// to a torn tail, for every possible tear.
func TestCrashAtEveryPoint(t *testing.T) {
	gen := t.TempDir()
	s, err := Open(gen)
	if err != nil {
		t.Fatal(err)
	}
	// boundaries[k] = log size after the first k ops are synced.
	boundaries := []int64{0}
	for _, op := range crashScript {
		if op.del {
			err = s.Delete(op.id)
		} else {
			err = s.Put(testRecord(op.id, op.name, "C"))
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, logSize(t, gen))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data := readLog(t, gen)
	if int64(len(data)) != boundaries[len(boundaries)-1] {
		t.Fatalf("log size %d, last boundary %d", len(data), boundaries[len(boundaries)-1])
	}

	for cut := 0; cut <= len(data); cut++ {
		// Completed ops at this cut: the last boundary at or before it.
		k := 0
		for i, b := range boundaries {
			if b <= int64(cut) {
				k = i
			}
		}
		want := applyScriptPrefix(k)
		torn := int64(cut) != boundaries[k]

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		ctx := fmt.Sprintf("cut %d (k=%d)", cut, k)
		assertState(t, s2, want, ctx)
		if got := s2.Recovery().TornTail; got != torn {
			t.Fatalf("%s: TornTail = %v, want %v", ctx, got, torn)
		}

		// The headline regression: a post-recovery acknowledged write must
		// survive another reopen at every truncation point.
		if err := s2.Put(testRecord("after-crash", "survivor", "C")); err != nil {
			t.Fatalf("%s: put after recovery: %v", ctx, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("%s: close: %v", ctx, err)
		}
		s3, err := Open(dir)
		if err != nil {
			t.Fatalf("%s: reopen: %v", ctx, err)
		}
		want["after-crash"] = "survivor"
		assertState(t, s3, want, ctx+" after reopen")
		s3.Close()
	}
}

// TestMidLogCorruptionRefusesOpen: damage before valid frames is not a torn
// tail — truncating there would discard acknowledged writes, so Open must
// fail loudly with ErrCorrupt instead.
func TestMidLogCorruptionRefusesOpen(t *testing.T) {
	for _, frame := range []int{0, 1} { // corrupt the 1st and the 2nd of 3 frames
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		sizes := []int64{0}
		for i := 0; i < 3; i++ {
			if err := s.Put(testRecord(fmt.Sprintf("r%d", i), "N", "C")); err != nil {
				t.Fatal(err)
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, logSize(t, dir))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		data := readLog(t, dir)
		// Flip one payload byte inside the chosen frame.
		data[sizes[frame]+frameHdrSize+2] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
			t.Errorf("frame %d corrupted: Open err = %v, want ErrCorrupt", frame, err)
		}
	}
}

// TestLastFrameCRCFlipTreatedAsTornTail: damage confined to the final frame
// is indistinguishable from a crash mid-append, so it is dropped under the
// WAL contract (the op was never guaranteed unless a later Sync covered it
// and more frames followed — in which case the previous test applies).
func TestLastFrameCRCFlipTreatedAsTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last int64
	for i := 0; i < 3; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r%d", i), "N", "C")); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			last = logSize(t, dir)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data := readLog(t, dir)
	data[last+frameHdrSize+2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt final frame should open as torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Errorf("Len = %d, want 2", s2.Len())
	}
	if rec := s2.Recovery(); !rec.TornTail {
		t.Errorf("recovery = %+v, want torn tail", rec)
	}
}

// TestSeqNoRegressionAfterCompactReopen: the snapshot holds only live
// records, so when the newest mutation is a Delete the tombstone's version
// used to vanish with it and the reopened store reused version numbers.
// Compact now persists the clock in an opSeq frame.
func TestSeqNoRegressionAfterCompactReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("r1", "A", "C")); err != nil { // v1
		t.Fatal(err)
	}
	if err := s.Put(testRecord("r2", "B", "C")); err != nil { // v2
		t.Fatal(err)
	}
	if err := s.Delete("r2"); err != nil { // tombstone v3
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if next := s2.NextSeq(); next <= 3 {
		t.Fatalf("seq after compact+reopen = %d, want > 3 (clock regressed; versions will be reused)", next)
	}
	if err := s2.Put(testRecord("r3", "D", "C")); err != nil {
		t.Fatal(err)
	}
	r3, _ := s2.Get("r3")
	if r3.Version <= 3 {
		t.Errorf("r3.Version = %d, duplicates a pre-compaction version", r3.Version)
	}
}

// TestSnapshotCorruptionRefusesOpen: snapshots are written atomically
// (tmp + fsync + rename), so a damaged snapshot is never a crash artifact
// and must fail Open rather than silently load a partial state.
func TestSnapshotCorruptionRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r%d", i), "N", "C")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapName)
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open with damaged snapshot err = %v, want ErrCorrupt", err)
	}
}

// TestRecoveryStatsClean: a healthy reopen reports frame counts and no
// repair.
func TestRecoveryStatsClean(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r%d", i), "N", "C")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil { // 4 records -> snapshot
		t.Fatal(err)
	}
	if err := s.Put(testRecord("r5", "N", "C")); err != nil { // 1 log frame
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.SnapshotRecords != 4 || rec.LogFrames != 1 || rec.TornTail || rec.TruncatedBytes != 0 {
		t.Errorf("recovery = %+v, want 4 snapshot records, 1 log frame, no repair", rec)
	}
}
