package lrec

import (
	"fmt"
	"sort"
	"sync"
)

// ValueKind describes what an attribute's values look like, used by the
// domain-knowledge layer of extraction (field recognizers) and by query
// parsing (e.g. geographic attributes).
type ValueKind int

// Attribute value kinds.
const (
	KindText ValueKind = iota
	KindName
	KindAddress
	KindCity
	KindZip
	KindPhone
	KindURL
	KindPrice
	KindDate
	KindNumber
	KindCategory
)

// String returns the kind's name.
func (k ValueKind) String() string {
	names := [...]string{"text", "name", "address", "city", "zip", "phone",
		"url", "price", "date", "number", "category"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// AttrSpec is the metadata for one attribute of a concept (§2.2 stipulation
// 2: "for each concept ... we have metadata, including a listing of
// attributes").
type AttrSpec struct {
	Key  string
	Kind ValueKind
	// Required marks attributes an instance is expected to define; used by
	// extraction validation and reconciliation, never enforced at write
	// time (the model explicitly tolerates missing data).
	Required bool
	// MaxValues, when > 0, is a statistical domain constraint: e.g. "each
	// restaurant is associated with a single zip code and has one or two
	// phone numbers" (§4.2). Extraction uses it to reject bad lists.
	MaxValues int
}

// Concept is the type-like metadata for a set of records (§2.2): a name,
// the domain it belongs to, and its attribute listing.
type Concept struct {
	Name   string
	Domain string
	Attrs  []AttrSpec
	// IDAttr names the attribute whose value naturally identifies an
	// instance (e.g. address for restaurants); used to synthesize ids.
	IDAttr string
}

// Spec returns the AttrSpec for key, if declared.
func (c *Concept) Spec(key string) (AttrSpec, bool) {
	for _, a := range c.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return AttrSpec{}, false
}

// AttrKeys returns the declared attribute keys in declaration order.
func (c *Concept) AttrKeys() []string {
	out := make([]string, len(c.Attrs))
	for i, a := range c.Attrs {
		out[i] = a.Key
	}
	return out
}

// Registry holds the concept and domain metadata for a web of concepts.
// Concepts may gain attributes over time ("the set of attributes associated
// with a concept may also evolve", §2.2), so registration is additive.
type Registry struct {
	mu       sync.RWMutex
	concepts map[string]*Concept
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{concepts: make(map[string]*Concept)}
}

// Register adds or extends a concept. If the concept already exists, new
// attributes are appended and existing ones are left untouched.
func (g *Registry) Register(c Concept) *Concept {
	g.mu.Lock()
	defer g.mu.Unlock()
	existing, ok := g.concepts[c.Name]
	if !ok {
		cp := c
		cp.Attrs = append([]AttrSpec(nil), c.Attrs...)
		g.concepts[c.Name] = &cp
		return &cp
	}
	for _, a := range c.Attrs {
		if _, has := existing.Spec(a.Key); !has {
			existing.Attrs = append(existing.Attrs, a)
		}
	}
	if existing.Domain == "" {
		existing.Domain = c.Domain
	}
	return existing
}

// Lookup returns the concept by name.
func (g *Registry) Lookup(name string) (*Concept, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c, ok := g.concepts[name]
	return c, ok
}

// Names returns all registered concept names, sorted.
func (g *Registry) Names() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.concepts))
	for n := range g.concepts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Domain returns the names of the concepts in the given domain, sorted.
// A domain is "a set of related concepts" (§2.2).
func (g *Registry) Domain(domain string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for n, c := range g.concepts {
		if c.Domain == domain {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Domains returns all distinct domain names, sorted.
func (g *Registry) Domains() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[string]bool)
	for _, c := range g.concepts {
		if c.Domain != "" {
			seen[c.Domain] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Validate checks r against its concept's metadata: the concept must be
// registered and multiplicity constraints must hold. Missing attributes are
// fine (loose structure); unknown attributes are fine too but are reported
// so the caller can evolve the concept.
func (g *Registry) Validate(r *Record) (unknownKeys []string, err error) {
	if r.ID == "" {
		return nil, ErrNoID
	}
	if r.Concept == "" {
		return nil, ErrNoConcept
	}
	c, ok := g.Lookup(r.Concept)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownConcept, r.Concept)
	}
	for _, k := range r.Keys() {
		spec, declared := c.Spec(k)
		if !declared {
			unknownKeys = append(unknownKeys, k)
			continue
		}
		if spec.MaxValues > 0 && len(r.Attrs[k]) > spec.MaxValues {
			return unknownKeys, fmt.Errorf("lrec: attribute %q of %s has %d values, max %d",
				k, r.ID, len(r.Attrs[k]), spec.MaxValues)
		}
	}
	return unknownKeys, nil
}
