package lrec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary codec for records. The store's log and snapshot files are sequences
// of length-prefixed, CRC-protected frames, each containing one encoded
// record operation. The format is:
//
//	frame  := length(u32 LE) crc32(u32 LE, of payload) payload
//	payload := op(u8) record
//	record := id concept version(uvarint) deleted(u8) nattrs(uvarint)
//	          { key nvals(uvarint) { value conf(f64) prov } * } *
//	prov   := sourceURL seq(uvarint) nops(uvarint) { op } *
//	string := len(uvarint) bytes
//
// A torn final frame (short read or CRC mismatch with nothing valid after
// it) terminates replay cleanly and is truncated away before new appends —
// the standard write-ahead-log recovery contract. A bad frame *followed by*
// valid frames is mid-log corruption and refuses to open (ErrCorrupt):
// truncating there would silently discard acknowledged writes.

// Operation codes in log frames.
const (
	opPut    = 1
	opDelete = 2
	// opSeq persists the store's logical clock without touching any record.
	// Compact writes one as the snapshot's first frame: the snapshot holds
	// only live records, so if the newest mutation was a Delete its
	// tombstone (and version) would otherwise vanish and a reopened store
	// would reuse version numbers. The carried Record has only Version set.
	opSeq = 3
)

// Frame geometry shared by writeFrame, readFrame, and the recovery scanner.
const (
	frameHdrSize = 8       // length(u32) + crc32(u32)
	maxFrameLen  = 1 << 28 // sanity bound on payload length
)

// ErrCorrupt reports a damaged (non-torn-tail) frame.
var ErrCorrupt = errors.New("lrec: corrupt frame")

type encoder struct {
	buf []byte
}

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) f64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

func (e *encoder) u8(b byte) {
	e.buf = append(e.buf, b)
}

func (e *encoder) record(r *Record) {
	e.str(r.ID)
	e.str(r.Concept)
	e.uvarint(r.Version)
	if r.Deleted {
		e.u8(1)
	} else {
		e.u8(0)
	}
	keys := r.Keys()
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		vals := r.Attrs[k]
		e.uvarint(uint64(len(vals)))
		for _, v := range vals {
			e.str(v.Value)
			e.f64(v.Confidence)
			e.uvarint(uint64(v.Support))
			e.str(v.Prov.SourceURL)
			e.uvarint(v.Prov.Seq)
			e.uvarint(uint64(len(v.Prov.Operators)))
			for _, op := range v.Prov.Operators {
				e.str(op)
			}
		}
	}
}

type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.fail("string length %d exceeds buffer", n)
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.fail("short f64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.fail("short u8")
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

const maxCount = 1 << 20 // sanity bound on decoded collection sizes

func (d *decoder) record() *Record {
	r := &Record{
		ID:      d.str(),
		Concept: d.str(),
		Version: d.uvarint(),
		Deleted: d.u8() == 1,
		Attrs:   make(map[string][]AttrValue),
	}
	nattrs := d.uvarint()
	if nattrs > maxCount {
		d.fail("attr count %d", nattrs)
		return r
	}
	for i := uint64(0); i < nattrs && d.err == nil; i++ {
		k := d.str()
		nvals := d.uvarint()
		if nvals > maxCount {
			d.fail("value count %d", nvals)
			return r
		}
		vals := make([]AttrValue, 0, nvals)
		for j := uint64(0); j < nvals && d.err == nil; j++ {
			var v AttrValue
			v.Value = d.str()
			v.Confidence = d.f64()
			v.Support = int(d.uvarint())
			v.Prov.SourceURL = d.str()
			v.Prov.Seq = d.uvarint()
			nops := d.uvarint()
			if nops > maxCount {
				d.fail("op count %d", nops)
				return r
			}
			for o := uint64(0); o < nops && d.err == nil; o++ {
				v.Prov.Operators = append(v.Prov.Operators, d.str())
			}
			vals = append(vals, v)
		}
		r.Attrs[k] = vals
	}
	return r
}

// EncodeRecord serializes r (without framing); DecodeRecord inverts it.
func EncodeRecord(r *Record) []byte {
	var e encoder
	e.record(r)
	return e.buf
}

// DecodeRecord deserializes a record encoded by EncodeRecord.
func DecodeRecord(b []byte) (*Record, error) {
	d := decoder{buf: b}
	r := d.record()
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// writeFrame writes one length-prefixed CRC-protected frame, reporting the
// frame's full on-disk size so callers can track the WAL offset.
func writeFrame(w io.Writer, op byte, r *Record) (int, error) {
	e := encoder{buf: make([]byte, 0, 256)}
	e.u8(op)
	e.record(r)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(e.buf)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(e.buf, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(e.buf); err != nil {
		return 0, err
	}
	return frameHdrSize + len(e.buf), nil
}

// errTornTail signals a clean end-of-log (torn final frame), not corruption.
var errTornTail = errors.New("lrec: torn tail")

// readFrame reads one frame, reporting its on-disk size n on success.
// io.EOF means a clean end; errTornTail means the bytes at the current
// offset are not a complete valid frame (short read, implausible length, or
// CRC mismatch). Whether that is a true torn tail (crash mid-append — safe
// to truncate) or mid-log corruption (valid frames follow — must refuse to
// open) is decided by the caller, which can see the rest of the file.
func readFrame(br *bufio.Reader) (op byte, r *Record, n int64, err error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return 0, nil, 0, io.EOF
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return 0, nil, 0, errTornTail
	}
	length := binary.LittleEndian.Uint32(hdr[0:])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if length == 0 || length > maxFrameLen {
		return 0, nil, 0, errTornTail
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, 0, errTornTail
	}
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return 0, nil, 0, errTornTail
	}
	d := decoder{buf: payload}
	op = d.u8()
	rec := d.record()
	if d.err != nil {
		return 0, nil, 0, d.err
	}
	return op, rec, int64(frameHdrSize) + int64(length), nil
}

// scanValidFrame reports the offset of the first complete CRC-valid frame in
// rem, scanning from offset 1 (offset 0 is where frame parsing just failed),
// or -1 if none exists. A CRC-valid frame after a bad one is conclusive
// evidence of mid-log corruption rather than a torn tail: truncating there
// would discard acknowledged writes, so recovery must refuse instead.
func scanValidFrame(rem []byte) int64 {
	for i := 1; i+frameHdrSize <= len(rem); i++ {
		length := binary.LittleEndian.Uint32(rem[i:])
		if length == 0 || length > maxFrameLen {
			continue
		}
		end := i + frameHdrSize + int(length)
		if end > len(rem) {
			continue
		}
		want := binary.LittleEndian.Uint32(rem[i+4:])
		if crc32.Checksum(rem[i+frameHdrSize:end], crcTable) == want {
			return int64(i)
		}
	}
	return -1
}
