package lrec

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"conceptweb/internal/obs"
	"conceptweb/internal/shard"
)

// TestShardRoutingPlacement: every record lands on exactly the shard
// hash(id) % N names, and the facade finds it there again.
func TestShardRoutingPlacement(t *testing.T) {
	const n = 4
	s := NewMemStore(WithShards(n))
	defer s.Close()
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("rec-%d", i)
		if err := s.Put(testRecord(id, "N"+id, "C")); err != nil {
			t.Fatal(err)
		}
		k := shard.Of(id, n)
		if _, err := s.shards[k].get(id); err != nil {
			t.Fatalf("%s missing from shard %d (its hash home): %v", id, k, err)
		}
		for j := 0; j < n; j++ {
			if j == k {
				continue
			}
			if _, err := s.shards[j].get(id); !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s present on shard %d, belongs on %d", id, j, k)
			}
		}
		if _, err := s.Get(id); err != nil {
			t.Fatalf("facade lost %s: %v", id, err)
		}
	}
	total := 0
	for _, sh := range s.shards {
		total += sh.length()
	}
	if total != 64 || s.Len() != 64 {
		t.Fatalf("shard lengths sum to %d, Len() = %d, want 64", total, s.Len())
	}
}

// TestManifestPinsShardCount: a fresh N>1 directory writes a manifest;
// reopening without a request gets N back, and a conflicting request errors
// instead of silently scrambling the routing.
func TestManifestPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("a", "A", "C")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatalf("fresh 4-shard dir has no manifest: %v", err)
	}
	if want := manifestHeader + "\nshards 4\n"; string(data) != want {
		t.Errorf("manifest = %q, want %q", data, want)
	}

	// Unspecified request resolves to the pinned count.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.NumShards(); got != 4 {
		t.Errorf("reopened NumShards = %d, want 4", got)
	}
	if _, err := s2.Get("a"); err != nil {
		t.Errorf("record lost across pinned reopen: %v", err)
	}
	// Matching explicit request is fine.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, WithShards(4))
	if err != nil {
		t.Fatalf("matching shard request rejected: %v", err)
	}
	s3.Close()

	// Conflicting explicit request must refuse to open.
	if _, err := Open(dir, WithShards(8)); err == nil || !strings.Contains(err.Error(), "resharding requires a rebuild") {
		t.Errorf("conflicting shard count opened anyway: %v", err)
	}
}

// TestLegacyLayoutOpensAsSingleShard: a pre-sharding directory (bare
// lrec.log, no manifest) opens at one shard with its data intact, and a
// request to reshard it in place errors.
func TestLegacyLayoutOpensAsSingleShard(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir) // single shard -> legacy file names, no manifest
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r%d", i), "N", "C")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Fatalf("single-shard store wrote a manifest (stat err = %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, logName)); err != nil {
		t.Fatalf("single-shard store did not use the legacy log name: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.NumShards(); got != 1 {
		t.Errorf("legacy dir NumShards = %d, want 1", got)
	}
	if s2.Len() != 8 {
		t.Errorf("legacy dir Len = %d, want 8", s2.Len())
	}
	s2.Close()

	if _, err := Open(dir, WithShards(4)); err == nil || !strings.Contains(err.Error(), "resharding requires a rebuild") {
		t.Errorf("resharding a legacy dir in place must error, got %v", err)
	}
}

// TestSingleShardByteFormatUnchanged: the sharded facade at N=1 must emit a
// WAL byte-identical to the raw frame codec — the backward-compat guarantee
// that pre-sharding binaries and directories interoperate with this build.
func TestSingleShardByteFormatUnchanged(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		testRecord("a", "Gochi", "Cupertino"),
		testRecord("b", "Zeni", "San Jose"),
	}
	var want bytes.Buffer
	for i, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
		cp := r.Clone()
		cp.Version = uint64(i + 1) // what the store assigned
		if _, err := writeFrame(&want, opPut, cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	del := &Record{ID: "a", Concept: "restaurant", Version: 3, Deleted: true}
	if _, err := writeFrame(&want, opDelete, del); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("single-shard WAL diverges from the raw frame stream:\n got %d bytes\nwant %d bytes", len(got), want.Len())
	}
}

// TestShardedStoreMatchesSingle: the facade's read API returns identical
// results at 1 and 4 shards — same scan order, same ByConcept/ByAttr sets,
// same versions — with writes interleaved identically.
func TestShardedStoreMatchesSingle(t *testing.T) {
	build := func(n int) *Store {
		s := NewMemStore(WithShards(n))
		for i := 0; i < 40; i++ {
			id := fmt.Sprintf("rec-%03d", i)
			r := testRecord(id, "Name "+id, "City"+fmt.Sprint(i%3))
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 40; i += 5 {
			if err := s.Delete(fmt.Sprintf("rec-%03d", i)); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	s1, s4 := build(1), build(4)
	defer s1.Close()
	defer s4.Close()

	snap := func(s *Store) []string {
		var out []string
		s.Scan(func(r *Record) bool {
			out = append(out, fmt.Sprintf("%s|%s|v%d|%s", r.ID, r.Concept, r.Version, r.Get("name")))
			return true
		})
		return out
	}
	if a, b := snap(s1), snap(s4); !reflect.DeepEqual(a, b) {
		t.Fatalf("scan diverges between 1 and 4 shards:\n1: %v\n4: %v", a, b)
	}
	if s1.Len() != s4.Len() {
		t.Errorf("Len diverges: %d vs %d", s1.Len(), s4.Len())
	}
	ids := func(recs []*Record) []string {
		var out []string
		for _, r := range recs {
			out = append(out, r.ID)
		}
		sort.Strings(out)
		return out
	}
	if a, b := ids(s1.ByConcept("restaurant")), ids(s4.ByConcept("restaurant")); !reflect.DeepEqual(a, b) {
		t.Errorf("ByConcept diverges: %v vs %v", a, b)
	}
	if a, b := ids(s1.ByAttr("restaurant", "city", "City1")), ids(s4.ByAttr("restaurant", "city", "City1")); !reflect.DeepEqual(a, b) {
		t.Errorf("ByAttr diverges: %v vs %v", a, b)
	}
	if a, b := s1.Concepts(), s4.Concepts(); !reflect.DeepEqual(a, b) {
		t.Errorf("Concepts diverges: %v vs %v", a, b)
	}
	if a, b := s1.CountByConcept("restaurant"), s4.CountByConcept("restaurant"); a != b {
		t.Errorf("CountByConcept diverges: %d vs %d", a, b)
	}
}

// TestShardedMetricsAggregate: with N shards the lrec counters must reflect
// logical operations, not per-shard mechanics — in particular one Compact of
// the whole store is ONE compaction even though every shard rewrites its own
// snapshot, and the per-shard WAL gauges report each partition separately.
func TestShardedMetricsAggregate(t *testing.T) {
	m := obs.NewRegistry()
	s, err := Open(t.TempDir(), WithMetrics(m), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 12; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r%d", i), "N", "C")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("r0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("r1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	want := map[string]int64{
		"lrec.puts": 12, "lrec.gets": 1, "lrec.deletes": 1,
		"lrec.wal.appends": 13, // 12 puts + 1 tombstone, across all shards
		"lrec.compactions": 1,  // one logical compaction, not one per shard
	}
	for name, n := range want {
		if got := snap.Counters[name]; got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
	}
	// After compact every shard's WAL gauge is back to zero; before close,
	// put one more record and its home shard's gauge alone must grow.
	for k := 0; k < 4; k++ {
		name := fmt.Sprintf("store.shard.%d.wal_bytes", k)
		if got := snap.Gauges[name]; got != 0 {
			t.Errorf("%s = %d after compact, want 0", name, got)
		}
	}
	id := idForShard(t, "grow-", 2, 4)
	if err := s.Put(testRecord(id, "N", "C")); err != nil {
		t.Fatal(err)
	}
	snap = m.Snapshot()
	for k := 0; k < 4; k++ {
		name := fmt.Sprintf("store.shard.%d.wal_bytes", k)
		got := snap.Gauges[name]
		if k == 2 && got <= 0 {
			t.Errorf("%s = %d after a put routed there, want > 0", name, got)
		}
		if k != 2 && got != 0 {
			t.Errorf("%s = %d, want 0 (no writes routed there)", name, got)
		}
	}
}

// TestPutBatchDeterministicVersions: PutBatch must assign versions by input
// position regardless of worker count or shard count, and report per-record
// errors positionally.
func TestPutBatchDeterministicVersions(t *testing.T) {
	mk := func() []*Record {
		var recs []*Record
		for i := 0; i < 30; i++ {
			recs = append(recs, testRecord(fmt.Sprintf("b-%02d", i), "N", "C"))
		}
		recs[7] = NewRecord("", "restaurant") // invalid: no ID
		return recs
	}
	type result struct {
		versions map[string]uint64
		badIdx   []int
	}
	run := func(shards, workers int) result {
		s := NewMemStore(WithShards(shards))
		defer s.Close()
		recs := mk()
		errs := s.PutBatch(recs, workers)
		res := result{versions: map[string]uint64{}}
		for i, err := range errs {
			if err != nil {
				res.badIdx = append(res.badIdx, i)
				continue
			}
			r, err := s.Get(recs[i].ID)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			res.versions[r.ID] = r.Version
		}
		return res
	}
	base := run(1, 1)
	if !reflect.DeepEqual(base.badIdx, []int{7}) {
		t.Fatalf("bad index = %v, want [7]", base.badIdx)
	}
	for _, cfg := range [][2]int{{1, 8}, {4, 1}, {4, 8}, {16, 8}} {
		got := run(cfg[0], cfg[1])
		if !reflect.DeepEqual(got, base) {
			t.Errorf("shards=%d workers=%d diverges from serial single-shard:\n got %+v\nwant %+v",
				cfg[0], cfg[1], got, base)
		}
	}
}
