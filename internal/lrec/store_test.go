package lrec

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"conceptweb/internal/obs"
)

func testRecord(id, name, city string) *Record {
	return NewRecord(id, "restaurant").Set("name", name).Set("city", city)
}

func TestStorePutGet(t *testing.T) {
	s := NewMemStore()
	r := testRecord("r1", "Gochi", "Cupertino")
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Get("name") != "Gochi" {
		t.Errorf("got = %s", got)
	}
	if got.Version == 0 {
		t.Error("version not assigned")
	}
	// Stored copy is independent of caller's record.
	r.Set("name", "mutated")
	got2, _ := s.Get("r1")
	if got2.Get("name") != "Gochi" {
		t.Error("store shares memory with caller")
	}
	// Returned copy is independent of the store.
	got2.Set("name", "also mutated")
	got3, _ := s.Get("r1")
	if got3.Get("name") != "Gochi" {
		t.Error("Get returns shared memory")
	}
}

func TestStorePutValidation(t *testing.T) {
	s := NewMemStore()
	if err := s.Put(NewRecord("", "c")); !errors.Is(err, ErrNoID) {
		t.Errorf("err = %v", err)
	}
	if err := s.Put(NewRecord("x", "")); !errors.Is(err, ErrNoConcept) {
		t.Errorf("err = %v", err)
	}
	g := NewRegistry()
	g.Register(Concept{Name: "known"})
	s2 := NewMemStore(WithRegistry(g))
	if err := s2.Put(NewRecord("x", "unknown")); !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("err = %v", err)
	}
	if err := s2.Put(NewRecord("x", "known")); err != nil {
		t.Errorf("err = %v", err)
	}
}

func TestStoreGetMissing(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewMemStore()
	s.Put(testRecord("r1", "Gochi", "Cupertino"))
	if err := s.Delete("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("r1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if err := s.Delete("r1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.ByConcept("restaurant"); len(got) != 0 {
		t.Errorf("ByConcept after delete = %v", got)
	}
}

func TestStoreByConcept(t *testing.T) {
	s := NewMemStore()
	s.Put(testRecord("b", "Birk's", "Santa Clara"))
	s.Put(testRecord("a", "Gochi", "Cupertino"))
	s.Put(NewRecord("p", "person").Set("name", "Alice"))
	got := s.ByConcept("restaurant")
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Errorf("ByConcept = %v", got)
	}
	if s.CountByConcept("restaurant") != 2 || s.CountByConcept("person") != 1 {
		t.Error("CountByConcept wrong")
	}
	if got := s.Concepts(); !reflect.DeepEqual(got, []string{"person", "restaurant"}) {
		t.Errorf("Concepts = %v", got)
	}
}

func TestStoreByAttr(t *testing.T) {
	s := NewMemStore()
	s.Put(testRecord("a", "Gochi", "Cupertino"))
	s.Put(testRecord("b", "Pizza My Heart", "Cupertino"))
	s.Put(testRecord("c", "Birk's", "Santa Clara"))
	got := s.ByAttr("restaurant", "city", "CUPERTINO") // normalization applies
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Errorf("ByAttr = %v", got)
	}
	// Replacing a record must update the secondary index.
	s.Put(testRecord("a", "Gochi", "San Jose"))
	if got := s.ByAttr("restaurant", "city", "cupertino"); len(got) != 1 || got[0].ID != "b" {
		t.Errorf("stale index: %v", got)
	}
	if got := s.ByAttr("restaurant", "city", "san jose"); len(got) != 1 {
		t.Errorf("new value missing: %v", got)
	}
}

func TestStoreScan(t *testing.T) {
	s := NewMemStore()
	for i := 0; i < 5; i++ {
		s.Put(testRecord(fmt.Sprintf("r%d", i), "N", "C"))
	}
	var seen []string
	s.Scan(func(r *Record) bool {
		seen = append(seen, r.ID)
		return len(seen) < 3
	})
	if !reflect.DeepEqual(seen, []string{"r0", "r1", "r2"}) {
		t.Errorf("scan = %v", seen)
	}
}

func TestStoreVersions(t *testing.T) {
	s := NewMemStore(WithMaxVersions(2))
	for i := 0; i < 4; i++ {
		s.Put(testRecord("r1", fmt.Sprintf("Name v%d", i), "C"))
	}
	hist := s.Versions("r1")
	if len(hist) != 2 {
		t.Fatalf("history len = %d, want 2 (capped)", len(hist))
	}
	if hist[0].Get("name") != "Name v1" || hist[1].Get("name") != "Name v2" {
		t.Errorf("history = %v, %v", hist[0], hist[1])
	}
	cur, _ := s.Get("r1")
	if cur.Get("name") != "Name v3" {
		t.Errorf("live = %v", cur)
	}
	if hist[0].Version >= hist[1].Version || hist[1].Version >= cur.Version {
		t.Error("versions not increasing")
	}
}

func TestStoreSeqMonotonic(t *testing.T) {
	s := NewMemStore()
	a := s.NextSeq()
	b := s.NextSeq()
	if b != a+1 {
		t.Errorf("seq not monotonic: %d then %d", a, b)
	}
	s.Put(testRecord("r", "N", "C"))
	if c := s.NextSeq(); c <= b {
		t.Errorf("seq went backwards after put: %d", c)
	}
}

func TestStorePersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testRecord("r1", "Gochi", "Cupertino"))
	s.Put(testRecord("r2", "Birk's", "Santa Clara"))
	s.Delete("r2")
	s.Put(testRecord("r3", "Pizza", "San Jose"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	if _, err := s2.Get("r2"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted record resurrected")
	}
	r1, err := s2.Get("r1")
	if err != nil || r1.Get("name") != "Gochi" {
		t.Errorf("r1 = %v, %v", r1, err)
	}
	// Secondary indexes rebuilt on replay.
	if got := s2.ByAttr("restaurant", "city", "cupertino"); len(got) != 1 {
		t.Errorf("index after replay = %v", got)
	}
	// Seq continues past pre-restart values.
	r3, _ := s2.Get("r3")
	if next := s2.NextSeq(); next <= r3.Version {
		t.Errorf("seq %d did not advance past %d", next, r3.Version)
	}
}

func TestStoreCrashTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testRecord("r1", "Gochi", "Cupertino"))
	s.Put(testRecord("r2", "Birk's", "Santa Clara"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the log tail.
	logPath := filepath.Join(dir, "lrec.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail should not fail open: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (second put torn)", s2.Len())
	}
	if _, err := s2.Get("r1"); err != nil {
		t.Error("first record lost")
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Put(testRecord("r1", fmt.Sprintf("v%d", i), "C")) // churn one record
	}
	s.Put(testRecord("r2", "Stable", "C"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Log should now be empty; snapshot holds live state.
	if fi, err := os.Stat(filepath.Join(dir, "lrec.log")); err != nil || fi.Size() != 0 {
		t.Errorf("log not truncated: %v %d", err, fi.Size())
	}
	// Mutations after compaction land in the fresh log.
	s.Put(testRecord("r3", "After", "C"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("Len after compact+reopen = %d", s2.Len())
	}
	r1, _ := s2.Get("r1")
	if r1.Get("name") != "v19" {
		t.Errorf("r1 = %v", r1)
	}
	if _, err := s2.Get("r3"); err != nil {
		t.Error("post-compaction put lost")
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("w%d-r%d", w, i)
				s.Put(testRecord(id, "N", "C"))
				s.Get(id)
				s.ByConcept("restaurant")
				s.CountByConcept("restaurant")
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreIndexConsistencyProperty(t *testing.T) {
	// Random puts/deletes; afterwards every index entry must point at a live
	// record with that value, and every live record must be indexed.
	s := NewMemStore()
	rng := rand.New(rand.NewSource(7))
	ids := []string{"a", "b", "c", "d", "e"}
	cities := []string{"x", "y", "z"}
	for i := 0; i < 500; i++ {
		id := ids[rng.Intn(len(ids))]
		if rng.Float64() < 0.3 {
			s.Delete(id) // may be ErrNotFound; fine
			continue
		}
		s.Put(testRecord(id, "N"+id, cities[rng.Intn(len(cities))]))
	}
	for _, city := range cities {
		for _, r := range s.ByAttr("restaurant", "city", city) {
			if r.Get("city") != city {
				t.Fatalf("index points to record with city %q, want %q", r.Get("city"), city)
			}
		}
	}
	s.Scan(func(r *Record) bool {
		found := false
		for _, m := range s.ByAttr("restaurant", "city", r.Get("city")) {
			if m.ID == r.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %s missing from attr index", r.ID)
		}
		return true
	})
}

func TestOpenBadDir(t *testing.T) {
	// A path that exists as a file cannot be a store dir.
	f := filepath.Join(t.TempDir(), "afile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f); err == nil {
		t.Error("Open on a file should fail")
	}
}

// TestStoreModelBased drives a durable store and an in-memory reference
// model with the same random operation sequence (put/delete/reopen) and
// requires identical observable state after every reopen — the standard
// model-checking harness for a write-ahead-logged store.
func TestStoreModelBased(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(99))
	model := map[string]string{} // id -> name (the only attr we vary)
	ids := []string{"a", "b", "c", "d", "e", "f"}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstModel := func(step int) {
		t.Helper()
		if s.Len() != len(model) {
			t.Fatalf("step %d: len %d, model %d", step, s.Len(), len(model))
		}
		for id, name := range model {
			got, err := s.Get(id)
			if err != nil {
				t.Fatalf("step %d: missing %s: %v", step, id, err)
			}
			if got.Get("name") != name {
				t.Fatalf("step %d: %s name %q, model %q", step, id, got.Get("name"), name)
			}
		}
	}
	for step := 0; step < 400; step++ {
		id := ids[rng.Intn(len(ids))]
		switch op := rng.Float64(); {
		case op < 0.55: // put
			name := fmt.Sprintf("name-%d", rng.Intn(1000))
			if err := s.Put(testRecord(id, name, "C")); err != nil {
				t.Fatal(err)
			}
			model[id] = name
		case op < 0.8: // delete
			err := s.Delete(id)
			_, inModel := model[id]
			if inModel && err != nil {
				t.Fatalf("step %d: delete %s: %v", step, id, err)
			}
			if !inModel && err == nil {
				t.Fatalf("step %d: delete of absent %s succeeded", step, id)
			}
			delete(model, id)
		case op < 0.9: // crash-free reopen
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if s, err = Open(dir); err != nil {
				t.Fatal(err)
			}
			checkAgainstModel(step)
		default: // compact then reopen
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if s, err = Open(dir); err != nil {
				t.Fatal(err)
			}
			checkAgainstModel(step)
		}
	}
	checkAgainstModel(400)
	s.Close()
}

// TestStoreMetrics checks the observability wiring: a durable store with a
// metrics registry counts puts, gets, deletes, WAL appends, and compactions.
func TestStoreMetrics(t *testing.T) {
	m := obs.NewRegistry()
	s, err := Open(t.TempDir(), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r%d", i), "N", "C")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("r0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("r2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Rejected operations must not inflate the counters: a put failing
	// validation and a delete of a missing id count nothing.
	if err := s.Put(NewRecord("", "restaurant")); !errors.Is(err, ErrNoID) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Delete("never-existed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	snap := m.Snapshot()
	want := map[string]int64{
		"lrec.puts": 3, "lrec.gets": 1, "lrec.deletes": 1,
		"lrec.wal.appends": 4, // 3 puts + 1 tombstone
		"lrec.compactions": 1,
	}
	for name, n := range want {
		if got := snap.Counters[name]; got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
	}

	// An un-instrumented store keeps working with zero metric overhead.
	plain := NewMemStore()
	if err := plain.Put(testRecord("p", "N", "C")); err != nil {
		t.Fatal(err)
	}
}
