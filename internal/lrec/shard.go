package lrec

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"conceptweb/internal/obs"
	"conceptweb/internal/textproc"
)

// shardEngine is one hash partition of a Store: a map of records with secondary
// indexes, durably backed by its own append-only log plus snapshots, behind
// its own mutex. The facade in store.go routes record IDs here with
// hash(id) % N and assigns versions from a store-wide clock; everything else
// — replay, torn-tail repair, the degraded latch, compaction — is per shard,
// so a write failure in one partition leaves the others serving normally.
// A single-shard store uses the pre-sharding file names (lrec.log,
// lrec.snap) and is byte-identical to the unpartitioned format.
type shardEngine struct {
	id int

	mu   sync.RWMutex
	recs map[string]*Record
	// byConcept maps concept name -> set of record ids.
	byConcept map[string]map[string]bool
	// byAttr maps concept \x00 key \x00 normalizedValue -> set of ids.
	byAttr map[string]map[string]bool
	// history holds superseded versions, newest last, capped per record.
	history     map[string][]*Record
	maxVersions int

	// seq is the highest version this shard has observed (replayed or
	// applied). Compact persists the facade's global clock through it so a
	// reopened store never hands out duplicate versions.
	seq uint64

	dir      string
	logName  string
	snapName string
	fs       storeFS
	logFile  storeFile
	logW     *bufio.Writer
	walOff   int64 // bytes appended to the current log (buffered included)

	// degraded, once set, latches the shard read-only: the first log write
	// or fsync failure means this shard's log no longer reflects memory, so
	// accepting further mutations would silently widen the divergence.
	// Sibling shards are unaffected.
	degraded error
	recovery RecoveryStats

	// epoch counts applied mutations; serving layers fold the per-shard
	// vector into one composed cache-invalidation epoch.
	epoch atomic.Uint64

	metrics  *obs.Registry
	walBytes *obs.Gauge // store.shard.<id>.wal_bytes; nil without metrics
}

func newShard(id int, s *Store) *shardEngine {
	sh := &shardEngine{
		id:          id,
		recs:        make(map[string]*Record),
		byConcept:   make(map[string]map[string]bool),
		byAttr:      make(map[string]map[string]bool),
		history:     make(map[string][]*Record),
		maxVersions: s.maxVersions,
		fs:          s.fs,
		metrics:     s.metrics,
	}
	if s.metrics != nil {
		sh.walBytes = s.metrics.Gauge(fmt.Sprintf("store.shard.%d.wal_bytes", id))
	}
	return sh
}

// open replays this shard's snapshot and log from dir and opens the log for
// appending, repairing a torn tail exactly like the unsharded store did.
func (sh *shardEngine) open(dir string) error {
	sh.dir = dir
	if err := sh.replaySnapshot(filepath.Join(dir, sh.snapName)); err != nil {
		return err
	}
	logPath := filepath.Join(dir, sh.logName)
	good, size, err := sh.replayLog(logPath)
	if err != nil {
		return err
	}
	if good < size {
		// Torn tail: cut the log back to the last good frame so appends
		// resume exactly where replay will next time.
		if err := sh.fs.Truncate(logPath, good); err != nil {
			return fmt.Errorf("lrec: open: truncate torn tail: %w", err)
		}
		sh.recovery.TornTail = true
		sh.recovery.TruncatedBytes = size - good
		sh.metrics.Counter("lrec.recovery.torn_tails").Inc()
		sh.metrics.Counter("lrec.recovery.truncated_bytes").Add(size - good)
	}
	f, err := sh.fs.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("lrec: open log: %w", err)
	}
	// Make the (possibly just-created) log's directory entry durable.
	if err := sh.fs.SyncDir(dir); err != nil {
		f.Close()
		return fmt.Errorf("lrec: open: sync dir: %w", err)
	}
	sh.logFile = f
	sh.logW = bufio.NewWriter(f)
	sh.setWALBytes(good)
	return nil
}

func (sh *shardEngine) setWALBytes(n int64) {
	sh.walOff = n
	if sh.walBytes != nil {
		sh.walBytes.Set(n)
	}
}

func (sh *shardEngine) degradedErr() error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.degradedErrLocked()
}

func (sh *shardEngine) degradedErrLocked() error {
	if sh.degraded == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrDegraded, sh.degraded)
}

// latch records the first write-path failure and flips the shard read-only.
// Caller holds mu.
func (sh *shardEngine) latch(err error) {
	if sh.degraded == nil {
		sh.degraded = err
		sh.metrics.Gauge("lrec.degraded").Add(1)
	}
}

// applyFrame applies one replayed operation and advances the clock. opSeq
// frames carry only a Version and exist purely to advance the clock.
func (sh *shardEngine) applyFrame(op byte, r *Record) {
	switch op {
	case opPut:
		sh.applyPut(r)
	case opDelete:
		sh.applyDelete(r.ID)
	}
	if r.Version > sh.seq {
		sh.seq = r.Version
	}
}

// replaySnapshot applies the snapshot at path. Snapshots are written to a
// temp file, fsynced, and renamed into place, so a valid one is always
// complete: any torn or corrupt frame here is real damage and fails Open.
func (sh *shardEngine) replaySnapshot(path string) error {
	f, err := sh.fs.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lrec: replay %s: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		op, r, _, err := readFrame(br)
		switch {
		case err == nil:
		case err == io.EOF:
			return nil
		case err == errTornTail:
			return fmt.Errorf("lrec: replay %s: %w: snapshot damaged (snapshots are atomic; torn frames here are not a crash artifact)", path, ErrCorrupt)
		default:
			return fmt.Errorf("lrec: replay %s: %w", path, err)
		}
		sh.applyFrame(op, r)
		if op == opPut {
			sh.recovery.SnapshotRecords++
		}
	}
}

// replayLog applies the log at path and returns the offset just past the
// last good frame plus the file's total size; good < size means a torn tail
// the caller must truncate. A bad frame followed by any CRC-valid frame is
// mid-log corruption and returns ErrCorrupt: truncating there would discard
// acknowledged writes, which is exactly what recovery must never do.
func (sh *shardEngine) replayLog(path string) (good, size int64, err error) {
	f, err := sh.fs.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("lrec: replay %s: %w", path, err)
	}
	defer f.Close()
	// The whole log is read into memory so the tail beyond a bad frame can
	// be scanned for valid frames; Compact bounds log growth, keeping this
	// proportional to one compaction interval rather than store size.
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, fmt.Errorf("lrec: replay %s: %w", path, err)
	}
	size = int64(len(data))
	br := bufio.NewReader(bytes.NewReader(data))
	for {
		op, r, n, err := readFrame(br)
		switch {
		case err == nil:
		case err == io.EOF:
			return good, size, nil
		case err == errTornTail:
			if off := scanValidFrame(data[good:]); off >= 0 {
				return 0, 0, fmt.Errorf("lrec: replay %s: %w: bad frame at offset %d but valid frame at %d — mid-log corruption, refusing to truncate", path, ErrCorrupt, good, good+off)
			}
			return good, size, nil
		default:
			return 0, 0, fmt.Errorf("lrec: replay %s: %w", path, err)
		}
		sh.applyFrame(op, r)
		good += n
		sh.recovery.LogFrames++
	}
}

// put assigns cp the next global version under the shard lock and applies
// it. Taking the version inside the lock keeps each shard's logged versions
// monotonic even under concurrent facade Puts to the same shard.
func (sh *shardEngine) put(cp *Record, clock *atomic.Uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.degradedErrLocked(); err != nil {
		return err
	}
	cp.Version = clock.Add(1)
	return sh.putLocked(cp)
}

// putBatch applies pre-versioned clones (the entries of clones selected by
// idxs, in idxs order) under one lock acquisition, recording each outcome in
// errs. A log failure mid-batch latches the shard; the remaining entries of
// this shard fail with ErrDegraded while other shards proceed.
func (sh *shardEngine) putBatch(clones []*Record, idxs []int, errs []error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, i := range idxs {
		if err := sh.degradedErrLocked(); err != nil {
			errs[i] = err
			continue
		}
		errs[i] = sh.putLocked(clones[i])
	}
}

// putLocked logs and applies a clone whose Version is already assigned.
// Caller holds mu.
func (sh *shardEngine) putLocked(cp *Record) error {
	if err := sh.logOp(opPut, cp); err != nil {
		sh.latch(err)
		return err
	}
	sh.applyPut(cp)
	if cp.Version > sh.seq {
		sh.seq = cp.Version
	}
	sh.epoch.Add(1)
	// Counted after validation and logging so rejected or failed puts do
	// not inflate the metric.
	sh.metrics.Counter("lrec.puts").Inc()
	return nil
}

// applyPut installs cp into maps and indexes; caller holds mu.
func (sh *shardEngine) applyPut(cp *Record) {
	if old, ok := sh.recs[cp.ID]; ok {
		sh.unindex(old)
		sh.pushHistory(old)
	}
	sh.recs[cp.ID] = cp
	sh.indexRec(cp)
}

func (sh *shardEngine) pushHistory(old *Record) {
	h := append(sh.history[old.ID], old)
	if len(h) > sh.maxVersions {
		h = h[len(h)-sh.maxVersions:]
	}
	sh.history[old.ID] = h
}

// deleteID logs a tombstone for id and removes it. Like put, the tombstone
// is logged before memory changes; a failed log write leaves the record in
// place and latches the shard read-only.
func (sh *shardEngine) deleteID(id string, clock *atomic.Uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.degradedErrLocked(); err != nil {
		return err
	}
	old, ok := sh.recs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	tomb := &Record{ID: id, Concept: old.Concept, Version: clock.Add(1), Deleted: true}
	if err := sh.logOp(opDelete, tomb); err != nil {
		sh.latch(err)
		return err
	}
	sh.applyDelete(id)
	if tomb.Version > sh.seq {
		sh.seq = tomb.Version
	}
	sh.epoch.Add(1)
	// Counted after the not-found check so rejected deletes don't inflate
	// the metric.
	sh.metrics.Counter("lrec.deletes").Inc()
	return nil
}

func (sh *shardEngine) applyDelete(id string) {
	old, ok := sh.recs[id]
	if !ok {
		return
	}
	sh.unindex(old)
	sh.pushHistory(old)
	delete(sh.recs, id)
}

func (sh *shardEngine) logOp(op byte, r *Record) error {
	if sh.logW == nil {
		return nil
	}
	n, err := writeFrame(sh.logW, op, r)
	if err != nil {
		return fmt.Errorf("lrec: log write: %w", err)
	}
	sh.setWALBytes(sh.walOff + int64(n))
	sh.metrics.Counter("lrec.wal.appends").Inc()
	return nil
}

func attrKey(concept, key, normVal string) string {
	return concept + "\x00" + key + "\x00" + normVal
}

func (sh *shardEngine) indexRec(r *Record) {
	set := sh.byConcept[r.Concept]
	if set == nil {
		set = make(map[string]bool)
		sh.byConcept[r.Concept] = set
	}
	set[r.ID] = true
	for k, vals := range r.Attrs {
		for _, v := range vals {
			ak := attrKey(r.Concept, k, textproc.Normalize(v.Value))
			m := sh.byAttr[ak]
			if m == nil {
				m = make(map[string]bool)
				sh.byAttr[ak] = m
			}
			m[r.ID] = true
		}
	}
}

func (sh *shardEngine) unindex(r *Record) {
	if set := sh.byConcept[r.Concept]; set != nil {
		delete(set, r.ID)
		if len(set) == 0 {
			delete(sh.byConcept, r.Concept)
		}
	}
	for k, vals := range r.Attrs {
		for _, v := range vals {
			ak := attrKey(r.Concept, k, textproc.Normalize(v.Value))
			if m := sh.byAttr[ak]; m != nil {
				delete(m, r.ID)
				if len(m) == 0 {
					delete(sh.byAttr, ak)
				}
			}
		}
	}
}

// get returns a copy of the record with the given id.
func (sh *shardEngine) get(id string) (*Record, error) {
	sh.metrics.Counter("lrec.gets").Inc()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.recs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return r.Clone(), nil
}

func (sh *shardEngine) length() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.recs)
}

// byConceptClones returns copies of the shard's records of the concept,
// sorted by ID.
func (sh *shardEngine) byConceptClones(concept string) []*Record {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ids := sortedIDs(sh.byConcept[concept])
	out := make([]*Record, len(ids))
	for i, id := range ids {
		out[i] = sh.recs[id].Clone()
	}
	return out
}

func (sh *shardEngine) countByConcept(concept string) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.byConcept[concept])
}

// byAttrClones returns copies of the shard's records with the given
// normalized attribute value, sorted by ID.
func (sh *shardEngine) byAttrClones(ak string) []*Record {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ids := sortedIDs(sh.byAttr[ak])
	out := make([]*Record, len(ids))
	for i, id := range ids {
		out[i] = sh.recs[id].Clone()
	}
	return out
}

func sortedIDs(set map[string]bool) []string {
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// versions returns copies of superseded versions of id, oldest first.
func (sh *shardEngine) versions(id string) []*Record {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	h := sh.history[id]
	out := make([]*Record, len(h))
	for i, r := range h {
		out[i] = r.Clone()
	}
	return out
}

func (sh *shardEngine) conceptNames(into map[string]bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for c := range sh.byConcept {
		into[c] = true
	}
}

// sync flushes buffered log writes to the OS and fsyncs the log file. A
// flush or fsync failure latches the shard read-only: after a failed fsync
// the kernel may have dropped the dirty pages, so pretending later syncs can
// succeed would break the durability contract.
func (sh *shardEngine) sync() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.degradedErrLocked(); err != nil {
		return err
	}
	return sh.syncLocked()
}

func (sh *shardEngine) syncLocked() error {
	if sh.logW == nil {
		return nil
	}
	if err := sh.logW.Flush(); err != nil {
		sh.latch(err)
		return fmt.Errorf("lrec: sync: %w", err)
	}
	if err := sh.logFile.Sync(); err != nil {
		sh.latch(err)
		return fmt.Errorf("lrec: sync: %w", err)
	}
	return nil
}

// compact writes a snapshot of the shard's live records and truncates its
// log, bounding recovery time. clock is the facade's global version clock,
// persisted as the snapshot's opSeq frame so a reopened store resumes
// version numbering past everything ever assigned — including versions that
// landed on sibling shards. Crash-safe at every step exactly like the
// unsharded Compact was: temp file, fsync, rename, directory fsync, and the
// old log handle stays open until the fresh log exists.
//
// The lrec.compactions counter is incremented once per facade Compact, not
// here, so an N-shard compaction does not count N times.
func (sh *shardEngine) compact(clock uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.dir == "" {
		return nil
	}
	if err := sh.degradedErrLocked(); err != nil {
		return err
	}
	tmp := filepath.Join(sh.dir, sh.snapName+".tmp")
	f, err := sh.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		sh.fs.Remove(tmp)
		return fmt.Errorf("lrec: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	// The clock goes first: the snapshot holds only live records, so if the
	// newest mutation was a Delete its tombstone's version would otherwise
	// be lost and a reopened store would hand out duplicate versions.
	if _, err := writeFrame(w, opSeq, &Record{Version: clock}); err != nil {
		return fail(err)
	}
	ids := make([]string, 0, len(sh.recs))
	for id := range sh.recs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, err := writeFrame(w, opPut, sh.recs[id]); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		sh.fs.Remove(tmp)
		return fmt.Errorf("lrec: compact: %w", err)
	}
	if err := sh.fs.Rename(tmp, filepath.Join(sh.dir, sh.snapName)); err != nil {
		sh.fs.Remove(tmp)
		return fmt.Errorf("lrec: compact: %w", err)
	}
	// Until the rename is fsynced into the directory, a crash could revert
	// to the old snapshot — so the log must not be truncated before this.
	if err := sh.fs.SyncDir(sh.dir); err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	// The log is now redundant; replace it. Create the fresh log before
	// releasing the old handle: if Create fails, appends continue on the
	// old log, which remains correct (snapshot + old log replays to the
	// same state).
	f2, err := sh.fs.Create(filepath.Join(sh.dir, sh.logName))
	if err != nil {
		return fmt.Errorf("lrec: compact: %w", err)
	}
	if sh.logFile != nil {
		// Buffered frames are already captured by the snapshot and the log
		// they belong to is obsolete; close errors change nothing durable.
		sh.logFile.Close()
	}
	sh.logFile = f2
	sh.logW = bufio.NewWriter(f2)
	if clock > sh.seq {
		sh.seq = clock
	}
	sh.setWALBytes(0)
	return nil
}

// closeShard flushes and closes the shard's files. File handles are released
// even on error; a degraded shard skips the final sync (its log tail is
// already suspect and will be handled as a torn tail on the next Open) and
// reports the latched error.
func (sh *shardEngine) closeShard() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.logW == nil {
		return nil
	}
	degraded := sh.degradedErrLocked()
	var syncErr error
	if degraded == nil {
		syncErr = sh.syncLocked()
	}
	closeErr := sh.logFile.Close()
	sh.logFile = nil
	sh.logW = nil
	switch {
	case degraded != nil:
		return degraded
	case syncErr != nil:
		return syncErr
	case closeErr != nil:
		return fmt.Errorf("lrec: close: %w", closeErr)
	}
	return nil
}
