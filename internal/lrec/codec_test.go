package lrec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"
)

// frameBytes encodes one framed op for corruption tests.
func frameBytes(t *testing.T, op byte, r *Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, op, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readFrameFrom(b []byte) (byte, *Record, int64, error) {
	return readFrame(bufio.NewReader(bytes.NewReader(b)))
}

func TestReadFrameReportsSize(t *testing.T) {
	enc := frameBytes(t, opPut, testRecord("id", "Name", "City"))
	op, r, n, err := readFrameFrom(enc)
	if err != nil {
		t.Fatal(err)
	}
	if op != opPut || r.ID != "id" {
		t.Errorf("op=%d r=%v", op, r)
	}
	if n != int64(len(enc)) {
		t.Errorf("n = %d, want %d", n, len(enc))
	}
}

// TestReadFrameCRCFlip: flipping any single payload byte must fail the CRC
// and surface as errTornTail (the replay layer decides whether that means a
// truncatable tail or refusal, based on what follows).
func TestReadFrameCRCFlip(t *testing.T) {
	enc := frameBytes(t, opPut, testRecord("id", "Gochi", "Cupertino"))
	for i := frameHdrSize; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		if _, _, _, err := readFrameFrom(bad); err != errTornTail {
			t.Fatalf("flip at %d: err = %v, want errTornTail", i, err)
		}
	}
}

// TestReadFrameHeaderCorruption: header damage (length or CRC field) must
// never be accepted, whatever it decodes to.
func TestReadFrameHeaderCorruption(t *testing.T) {
	enc := frameBytes(t, opPut, testRecord("id", "Gochi", "Cupertino"))
	for i := 0; i < frameHdrSize; i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		if _, _, _, err := readFrameFrom(bad); err == nil {
			t.Fatalf("header flip at %d accepted", i)
		}
	}
}

// TestReadFrameOversizeLength: an implausible length prefix (zero, or past
// the sanity bound) is rejected without attempting a giant allocation.
func TestReadFrameOversizeLength(t *testing.T) {
	for _, length := range []uint32{0, maxFrameLen + 1, 1<<32 - 1} {
		var hdr [frameHdrSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], length)
		binary.LittleEndian.PutUint32(hdr[4:], 0xDEADBEEF)
		if _, _, _, err := readFrameFrom(hdr[:]); err != errTornTail {
			t.Errorf("length %d: err = %v, want errTornTail", length, err)
		}
	}
}

// TestReadFrameTruncationEveryBoundary: a frame cut at every possible byte
// is either a clean EOF (nothing read) or a torn tail — never an accepted
// frame and never a panic.
func TestReadFrameTruncationEveryBoundary(t *testing.T) {
	enc := frameBytes(t, opPut, testRecord("id", "café 饺子馆", "Cupertino"))
	for cut := 0; cut < len(enc); cut++ {
		_, _, _, err := readFrameFrom(enc[:cut])
		switch {
		case cut == 0:
			if err != io.EOF {
				t.Fatalf("cut 0: err = %v, want io.EOF", err)
			}
		default:
			if err != errTornTail {
				t.Fatalf("cut %d: err = %v, want errTornTail", cut, err)
			}
		}
	}
	// Two frames cut inside the second: first survives, second is torn.
	two := append(append([]byte(nil), enc...), enc...)
	br := bufio.NewReader(bytes.NewReader(two[:len(enc)+5]))
	if _, _, _, err := readFrame(br); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if _, _, _, err := readFrame(br); err != errTornTail {
		t.Fatalf("second frame: err = %v, want errTornTail", err)
	}
}

// TestEncodeDecodeMultibyte: a record whose every string field holds
// multibyte UTF-8 must round-trip bit-exactly through EncodeRecord /
// DecodeRecord and through framing.
func TestEncodeDecodeMultibyte(t *testing.T) {
	r := NewRecord("идентификатор-🍜", "restaurante-日本")
	r.Version = 42
	r.Add("nom", AttrValue{
		Value:      "Gochi 餃子館 — crème brûlée 🥟",
		Confidence: 0.75,
		Support:    3,
		Prov: Provenance{
			SourceURL: "welp.example/ビジネス/ぎょうざ",
			Operators: []string{"liste-extraktion", "συνταίριασμα"},
			Seq:       7,
		},
	})
	r.Add("ville", AttrValue{Value: "Köln", Confidence: 1})

	got, err := DecodeRecord(EncodeRecord(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != r.ID || got.Concept != r.Concept || got.Version != r.Version ||
		!reflect.DeepEqual(got.Attrs, r.Attrs) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", r, got)
	}

	op, fr, _, err := readFrameFrom(frameBytes(t, opDelete, r))
	if err != nil || op != opDelete {
		t.Fatalf("framed round trip: op=%d err=%v", op, err)
	}
	if fr.ID != r.ID || !reflect.DeepEqual(fr.Attrs, r.Attrs) {
		t.Fatal("framed round trip mismatch")
	}
}

// TestReadFrameValidCRCBadPayload: a frame whose CRC matches but whose
// payload does not decode is ErrCorrupt — real damage, not a torn tail.
func TestReadFrameValidCRCBadPayload(t *testing.T) {
	payload := []byte{opPut, 0xFF} // truncated uvarint for the ID length
	var buf bytes.Buffer
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf.Write(hdr[:])
	buf.Write(payload)
	if _, _, _, err := readFrameFrom(buf.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestScanValidFrame(t *testing.T) {
	frame := frameBytes(t, opPut, testRecord("id", "N", "C"))
	garbage := []byte{0x01, 0x02, 0x03, 0x04, 0x05}

	if off := scanValidFrame(append(append([]byte(nil), garbage...), frame...)); off != int64(len(garbage)) {
		t.Errorf("offset = %d, want %d", off, len(garbage))
	}
	if off := scanValidFrame(garbage); off != -1 {
		t.Errorf("garbage-only offset = %d, want -1", off)
	}
	// A torn prefix of a frame must not count as valid.
	if off := scanValidFrame(append(append([]byte(nil), garbage...), frame[:len(frame)-1]...)); off != -1 {
		t.Errorf("torn-frame offset = %d, want -1", off)
	}
}
