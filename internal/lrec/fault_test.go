package lrec

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// faultFS is the fault-injection filesystem: it can fail any operation by
// name (optionally scoped to one file) and kill writes after a total byte
// budget — writing the allowed prefix and then failing, exactly like a disk
// filling up or a process dying mid-write.
type faultFS struct {
	osFS
	mu         sync.Mutex
	writeLimit int64 // total writable bytes across all files; <0 = unlimited
	written    int64
	perFile    map[string]*fileBudget // base name -> per-file write budget
	failOps    map[string]error       // "rename", "sync", "create:lrec.log", ...
}

// fileBudget kills writes to one file after limit bytes, independent of the
// global budget — the shape of a single shard's disk going bad.
type fileBudget struct {
	limit   int64
	written int64
}

var errInjected = errors.New("faultfs: injected fault")

func newFaultFS() *faultFS {
	return &faultFS{
		writeLimit: -1,
		perFile:    map[string]*fileBudget{},
		failOps:    map[string]error{},
	}
}

// limitFileWrites caps future writes to the file with the given base name.
func (f *faultFS) limitFileWrites(base string, n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.perFile[base] = &fileBudget{limit: n}
}

func (f *faultFS) failOn(ops ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, op := range ops {
		f.failOps[op] = fmt.Errorf("%w: %s", errInjected, op)
	}
}

func (f *faultFS) clearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failOps = map[string]error{}
}

// check returns the injected error for op (optionally scoped to base name).
func (f *faultFS) check(op, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, ok := f.failOps[op]; ok {
		return err
	}
	if name != "" {
		if err, ok := f.failOps[op+":"+filepath.Base(name)]; ok {
			return err
		}
	}
	return nil
}

func (f *faultFS) Create(name string) (storeFile, error) {
	if err := f.check("create", name); err != nil {
		return nil, err
	}
	sf, err := f.osFS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: sf, name: filepath.Base(name)}, nil
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (storeFile, error) {
	if err := f.check("openfile", name); err != nil {
		return nil, err
	}
	sf, err := f.osFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: sf, name: filepath.Base(name)}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.check("rename", newpath); err != nil {
		return err
	}
	return f.osFS.Rename(oldpath, newpath)
}

func (f *faultFS) Truncate(name string, size int64) error {
	if err := f.check("truncate", name); err != nil {
		return err
	}
	return f.osFS.Truncate(name, size)
}

func (f *faultFS) SyncDir(dir string) error {
	if err := f.check("syncdir", dir); err != nil {
		return err
	}
	return f.osFS.SyncDir(dir)
}

// faultFile enforces the byte budgets on writes and injects sync faults.
type faultFile struct {
	fs   *faultFS
	f    storeFile
	name string // base name, for per-file budgets
}

func (w *faultFile) Read(p []byte) (int, error) { return w.f.Read(p) }
func (w *faultFile) Close() error               { return w.f.Close() }

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	allowed := len(p)
	if w.fs.writeLimit >= 0 {
		if rem := w.fs.writeLimit - w.fs.written; rem < int64(len(p)) {
			allowed = int(max(rem, 0))
		}
	}
	if fb := w.fs.perFile[w.name]; fb != nil {
		if rem := fb.limit - fb.written; rem < int64(allowed) {
			allowed = int(max(rem, 0))
		}
		fb.written += int64(allowed)
	}
	w.fs.written += int64(allowed)
	w.fs.mu.Unlock()
	n, err := w.f.Write(p[:allowed])
	if err != nil {
		return n, err
	}
	if allowed < len(p) {
		return n, fmt.Errorf("%w: write budget exhausted", errInjected)
	}
	return n, nil
}

func (w *faultFile) Sync() error {
	if err := w.fs.check("sync", ""); err != nil {
		return err
	}
	return w.f.Sync()
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// bigRecord is large enough to overflow the log's bufio buffer, forcing the
// frame write through to the (faulted) file during Put itself.
func bigRecord(id string) *Record {
	r := NewRecord(id, "restaurant")
	v := make([]byte, 8192)
	for i := range v {
		v[i] = 'x'
	}
	return r.Set("name", string(v))
}

// TestPutWriteErrorLatchesDegraded: a failed log write must leave memory
// untouched (the op is logged before it is applied) and flip the store
// read-only, instead of acknowledging an op the log never saw.
func TestPutWriteErrorLatchesDegraded(t *testing.T) {
	ffs := newFaultFS()
	dir := t.TempDir()
	s, err := Open(dir, withFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testRecord("ok", "Gochi", "Cupertino")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	ffs.mu.Lock()
	ffs.writeLimit = ffs.written + 3 // next frame tears after 3 bytes
	ffs.mu.Unlock()

	if err := s.Put(bigRecord("doomed")); err == nil {
		t.Fatal("Put with failing log write must error")
	}
	// Memory must not have diverged from the log.
	if _, err := s.Get("doomed"); !errors.Is(err, ErrNotFound) {
		t.Error("failed Put mutated memory; store has diverged from its log")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	// The store is latched read-only...
	if err := s.Degraded(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Degraded() = %v, want ErrDegraded", err)
	}
	if err := s.Put(testRecord("later", "N", "C")); !errors.Is(err, ErrDegraded) {
		t.Errorf("Put on degraded store = %v, want ErrDegraded", err)
	}
	if err := s.Delete("ok"); !errors.Is(err, ErrDegraded) {
		t.Errorf("Delete on degraded store = %v, want ErrDegraded", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Sync on degraded store = %v, want ErrDegraded", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Compact on degraded store = %v, want ErrDegraded", err)
	}
	// ...but reads keep working.
	if r, err := s.Get("ok"); err != nil || r.Get("name") != "Gochi" {
		t.Errorf("read on degraded store: %v %v", r, err)
	}
	if err := s.Close(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Close on degraded store = %v, want ErrDegraded", err)
	}

	// Recovery: reopening the directory (real FS) yields the pre-fault
	// state — the torn half-frame from the failed write is repaired away.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", s2.Len())
	}
	if _, err := s2.Get("ok"); err != nil {
		t.Error("synced record lost")
	}
	if err := s2.Put(testRecord("fresh", "N", "C")); err != nil {
		t.Errorf("reopened store must accept writes: %v", err)
	}
}

// TestSyncErrorLatchesDegraded: after a failed fsync the kernel may have
// dropped the dirty pages, so the store must refuse to pretend later syncs
// can make the data durable.
func TestSyncErrorLatchesDegraded(t *testing.T) {
	ffs := newFaultFS()
	s, err := Open(t.TempDir(), withFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testRecord("r1", "N", "C")); err != nil {
		t.Fatal(err)
	}
	ffs.failOn("sync")
	if err := s.Sync(); err == nil {
		t.Fatal("Sync must surface the fsync error")
	}
	if err := s.Degraded(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Degraded() = %v, want ErrDegraded", err)
	}
	ffs.clearFaults()
	// Even with the fault gone the latch holds: durability of the earlier
	// ack is unknown, so the store stays read-only until reopened.
	if err := s.Sync(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Sync after latch = %v, want ErrDegraded", err)
	}
}

// compactStore opens a faulted store with a few records and a prior
// snapshot, ready for Compact error-path tests.
func compactStore(t *testing.T, ffs *faultFS) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, withFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r%d", i), fmt.Sprintf("N%d", i), "C")); err != nil {
			t.Fatal(err)
		}
	}
	return s, dir
}

// assertCompactFailureRecoverable drives the store after a failed Compact:
// it must still accept writes, close cleanly, and reopen with nothing lost —
// and no snapshot temp file may be left behind.
func assertCompactFailureRecoverable(t *testing.T, ffs *faultFS, s *Store, dir string) {
	t.Helper()
	if _, err := os.Stat(filepath.Join(dir, snapName+".tmp")); !os.IsNotExist(err) {
		t.Errorf("compact failure leaked %s.tmp (stat err = %v)", snapName, err)
	}
	ffs.clearFaults()
	if err := s.Put(testRecord("after", "post-failure", "C")); err != nil {
		t.Fatalf("store unusable after failed compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close after failed compact: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after failed compact: %v", err)
	}
	defer s2.Close()
	want := map[string]string{"r0": "N0", "r1": "N1", "r2": "N2", "after": "post-failure"}
	assertState(t, s2, want, "after failed compact")
}

func TestCompactTmpCreateFailure(t *testing.T) {
	ffs := newFaultFS()
	s, dir := compactStore(t, ffs)
	ffs.failOn("create:" + snapName + ".tmp")
	if err := s.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("Compact = %v, want injected error", err)
	}
	assertCompactFailureRecoverable(t, ffs, s, dir)
}

func TestCompactRenameFailureRemovesTmp(t *testing.T) {
	ffs := newFaultFS()
	s, dir := compactStore(t, ffs)
	ffs.failOn("rename")
	if err := s.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("Compact = %v, want injected error", err)
	}
	assertCompactFailureRecoverable(t, ffs, s, dir)
}

// TestCompactNewLogCreateFailureKeepsOldLog is the satellite bug: Compact
// used to close the old log before creating the new one, so a failed create
// left logFile/logW pointing at a closed file and every later Put broke the
// store. The old log must stay open until the new one exists.
func TestCompactNewLogCreateFailureKeepsOldLog(t *testing.T) {
	ffs := newFaultFS()
	s, dir := compactStore(t, ffs)
	ffs.failOn("create:" + logName)
	if err := s.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("Compact = %v, want injected error", err)
	}
	// The snapshot landed but the log was not replaced; both coexisting is
	// fine because replaying snapshot + old log is idempotent.
	assertCompactFailureRecoverable(t, ffs, s, dir)
}

// TestCompactSyncDirFailureKeepsLog: if the directory fsync after the
// snapshot rename fails, the rename may not be durable — truncating the log
// at that point could lose everything on crash, so Compact must stop first.
func TestCompactSyncDirFailureKeepsLog(t *testing.T) {
	ffs := newFaultFS()
	s, dir := compactStore(t, ffs)
	before := logSize(t, dir)
	ffs.failOn("syncdir")
	if err := s.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("Compact = %v, want injected error", err)
	}
	if got := logSize(t, dir); got < before {
		t.Errorf("log shrank from %d to %d despite un-durable snapshot rename", before, got)
	}
	assertCompactFailureRecoverable(t, ffs, s, dir)
}

// TestWriteKilledAtEveryOffset sweeps the write-kill budget from zero until
// a full scripted run succeeds: every possible point a write can die at.
// After each kill the directory is reopened with the real filesystem and
// must contain exactly the synced prefix of the script — acknowledged ops
// all present, and at most the single in-flight op beyond them.
func TestWriteKilledAtEveryOffset(t *testing.T) {
	for limit := int64(0); ; limit++ {
		ffs := newFaultFS()
		ffs.writeLimit = limit
		dir := t.TempDir()
		s, err := Open(dir, withFS(ffs))
		if err != nil {
			t.Fatalf("limit %d: open: %v", limit, err)
		}
		acked := 0
		for _, op := range crashScript {
			if op.del {
				err = s.Delete(op.id)
			} else {
				err = s.Put(testRecord(op.id, op.name, "C"))
			}
			if err != nil {
				break
			}
			if err = s.Sync(); err != nil {
				break
			}
			acked++
		}
		killed := err != nil
		s.Close()

		s2, rerr := Open(dir)
		if rerr != nil {
			t.Fatalf("limit %d: reopen: %v", limit, rerr)
		}
		// Everything acked by Sync must be there; the one unsynced
		// in-flight op may or may not have reached the disk.
		wantAcked := applyScriptPrefix(acked)
		wantNext := wantAcked
		if acked < len(crashScript) {
			wantNext = applyScriptPrefix(acked + 1)
		}
		if !stateEquals(s2, wantAcked) && !stateEquals(s2, wantNext) {
			t.Fatalf("limit %d: recovered state matches neither %d nor %d acked ops (len=%d)",
				limit, acked, acked+1, s2.Len())
		}
		s2.Close()
		if !killed {
			return // budget large enough for the whole script: sweep done
		}
	}
}

func stateEquals(s *Store, want map[string]string) bool {
	if s.Len() != len(want) {
		return false
	}
	for id, name := range want {
		r, err := s.Get(id)
		if err != nil || r.Get("name") != name {
			return false
		}
	}
	return true
}
