package lrec

import (
	"errors"
	"fmt"
	"testing"

	"conceptweb/internal/shard"
)

// idForShard scans numbered IDs until one routes to the wanted shard.
func idForShard(t *testing.T, prefix string, want, n int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("%s%d", prefix, i)
		if shard.Of(id, n) == want {
			return id
		}
	}
	t.Fatalf("no id with prefix %q routes to shard %d of %d", prefix, want, n)
	return ""
}

// TestShardWriteFaultLatchesOnlyThatShard is the blast-radius contract of the
// partitioned store: a write kill on shard k's WAL latches shard k read-only
// while every other shard keeps accepting writes, the damage is visible in
// ShardStates (which /healthz renders), and a reopen repairs the torn tail.
func TestShardWriteFaultLatchesOnlyThatShard(t *testing.T) {
	const nshards = 4
	const victim = 2
	ffs := newFaultFS()
	dir := t.TempDir()
	s, err := Open(dir, withFS(ffs), WithShards(nshards))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// One synced record per shard, so recovery of the survivors is checkable.
	ids := make([]string, nshards)
	for k := 0; k < nshards; k++ {
		ids[k] = idForShard(t, "seed-", k, nshards)
		if err := s.Put(testRecord(ids[k], "N"+ids[k], "C")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// Kill the victim shard's WAL three bytes into its next frame.
	walName, _ := shardFileNames(nshards, victim)
	ffs.limitFileWrites(walName, 3)

	doomed := idForShard(t, "doomed-", victim, nshards)
	if err := s.Put(bigRecord(doomed)); err == nil {
		t.Fatal("Put into the killed shard must error")
	}
	if _, err := s.Get(doomed); !errors.Is(err, ErrNotFound) {
		t.Error("failed Put mutated memory; shard diverged from its log")
	}

	// The victim is latched...
	if err := s.Degraded(); !errors.Is(err, ErrDegraded) {
		t.Errorf("Degraded() = %v, want ErrDegraded", err)
	}
	if err := s.Put(bigRecord(idForShard(t, "again-", victim, nshards))); !errors.Is(err, ErrDegraded) {
		t.Errorf("Put into latched shard = %v, want ErrDegraded", err)
	}
	// ...but every other shard still serves reads AND writes.
	for k := 0; k < nshards; k++ {
		if r, err := s.Get(ids[k]); err != nil || r.Get("name") != "N"+ids[k] {
			t.Errorf("shard %d: read after fault: %v %v", k, r, err)
		}
		if k == victim {
			continue
		}
		if err := s.Put(bigRecord(idForShard(t, "post-", k, nshards))); err != nil {
			t.Errorf("shard %d: write after shard %d latched: %v", k, victim, err)
		}
	}

	// The per-shard breakdown pinpoints the failure for /healthz.
	states := s.ShardStates()
	if len(states) != nshards {
		t.Fatalf("ShardStates len = %d, want %d", len(states), nshards)
	}
	for _, st := range states {
		if st.Shard == victim {
			if st.Degraded == "" {
				t.Errorf("shard %d should report its degraded cause", victim)
			}
			continue
		}
		if st.Degraded != "" {
			t.Errorf("healthy shard %d reports degraded: %s", st.Shard, st.Degraded)
		}
	}
	s.Close()

	// Reopen on the real filesystem: the manifest pins the shard count, the
	// victim's torn half-frame is truncated away, and writes work everywhere.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.NumShards(); got != nshards {
		t.Fatalf("reopened NumShards = %d, want %d", got, nshards)
	}
	if rec := s2.Recovery(); !rec.TornTail {
		t.Error("reopen should report the repaired torn tail")
	}
	for k := 0; k < nshards; k++ {
		if _, err := s2.Get(ids[k]); err != nil {
			t.Errorf("shard %d: synced record %s lost across reopen: %v", k, ids[k], err)
		}
	}
	if _, err := s2.Get(doomed); !errors.Is(err, ErrNotFound) {
		t.Errorf("torn record survived reopen: %v", err)
	}
	if err := s2.Put(bigRecord(idForShard(t, "fresh-", victim, nshards))); err != nil {
		t.Errorf("recovered shard must accept writes: %v", err)
	}
}
