package maintain

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"conceptweb/internal/obs"
	"conceptweb/woc"
)

// fakeSys is a scheduling-only System: Refresh records the cohort and
// applies gone/resurrection transitions to the page set, without any store.
type fakeSys struct {
	mu         sync.Mutex
	pages      map[string]bool
	gone       map[string]bool
	dirty      map[string]bool // next refresh of this URL reports an updated record
	calls      [][]string
	reconciled []string // concepts passed to Reconcile, in call order
	err        error
}

func newFakeSys(urls ...string) *fakeSys {
	f := &fakeSys{pages: map[string]bool{}, gone: map[string]bool{}, dirty: map[string]bool{}}
	for _, u := range urls {
		f.pages[u] = true
	}
	return f
}

func (f *fakeSys) PageURLs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.pages))
	for u := range f.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func (f *fakeSys) Refresh(urls []string) (woc.RefreshStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, append([]string(nil), urls...))
	if f.err != nil {
		return woc.RefreshStats{}, f.err
	}
	st := woc.RefreshStats{PagesChecked: len(urls)}
	for _, u := range urls {
		switch {
		case f.gone[u]:
			if f.pages[u] {
				delete(f.pages, u)
				st.PagesGone++
			} else {
				st.PagesChecked-- // not stored, still unfetchable
			}
		case !f.pages[u]:
			f.pages[u] = true // resurrection: fetch succeeded again
			st.PagesChanged++
		case f.dirty[u]:
			delete(f.dirty, u) // content changed: a record absorbed new evidence
			st.PagesChanged++
			st.RecordsUpdated++
		default:
			st.PagesUnchanged++
		}
	}
	return st, nil
}

func (f *fakeSys) Reconcile(concept string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reconciled = append(f.reconciled, concept)
	return 1
}

func (f *fakeSys) reconcileCalls() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.reconciled...)
}

func (f *fakeSys) setDirty(u string) {
	f.mu.Lock()
	f.dirty[u] = true
	f.mu.Unlock()
}

func (f *fakeSys) setGone(u string, gone bool) {
	f.mu.Lock()
	f.gone[u] = gone
	f.mu.Unlock()
}

// TestLoopCohortRotation pins the scheduling order: never-checked URLs
// first in URL order, then strict oldest-first rotation across passes.
func TestLoopCohortRotation(t *testing.T) {
	sys := newFakeSys("p00", "p01", "p02", "p03", "p04", "p05", "p06", "p07", "p08", "p09")
	l := NewLoop(sys, Options{Batch: 4})
	for i := 0; i < 3; i++ {
		if _, err := l.RunPass(); err != nil {
			t.Fatal(err)
		}
	}
	want := [][]string{
		{"p00", "p01", "p02", "p03"},
		{"p04", "p05", "p06", "p07"},
		{"p08", "p09", "p00", "p01"}, // wraps to the stalest two
	}
	if !reflect.DeepEqual(sys.calls, want) {
		t.Fatalf("cohorts = %v, want %v", sys.calls, want)
	}
}

// TestLoopSweepCounting: a sweep completes when every URL known at sweep
// start has been refreshed since, regardless of batch boundaries.
func TestLoopSweepCounting(t *testing.T) {
	sys := newFakeSys("p00", "p01", "p02", "p03", "p04", "p05", "p06", "p07", "p08", "p09")
	l := NewLoop(sys, Options{Batch: 4})
	wantSweeps := []uint64{0, 0, 1, 1, 1, 2} // 10 urls / batch 4
	for i, want := range wantSweeps {
		if _, err := l.RunPass(); err != nil {
			t.Fatal(err)
		}
		if got := l.Status().Sweeps; got != want {
			t.Fatalf("after pass %d: sweeps = %d, want %d", i+1, got, want)
		}
	}
	if st := l.Status(); st.Passes != 6 || st.PagesTracked != 10 {
		t.Fatalf("status = %+v", st)
	}
}

// TestLoopGoneProbeBudget: a vanished URL stays in rotation for GoneRetries
// probe passes, then falls out; resurrection within the budget re-adopts it.
func TestLoopGoneProbeBudget(t *testing.T) {
	sys := newFakeSys("a", "b", "c")
	l := NewLoop(sys, Options{Batch: 10, GoneRetries: 2})

	sys.setGone("b", true)
	if _, err := l.RunPass(); err != nil { // b leaves the store, budget 2->1
		t.Fatal(err)
	}
	if st := l.Status(); st.GoneTracked != 1 || st.PagesTracked != 2 {
		t.Fatalf("after gone: %+v", st)
	}
	if _, err := l.RunPass(); err != nil { // probe fails, budget 1->0: dropped
		t.Fatal(err)
	}
	if st := l.Status(); st.GoneTracked != 0 {
		t.Fatalf("probe budget not exhausted: %+v", st)
	}
	if _, err := l.RunPass(); err != nil {
		t.Fatal(err)
	}
	last := sys.calls[len(sys.calls)-1]
	if !reflect.DeepEqual(last, []string{"a", "c"}) {
		t.Fatalf("dropped URL still probed: %v", last)
	}

	// Resurrection inside the budget: gone one pass, back the next.
	sys2 := newFakeSys("a", "b", "c")
	l2 := NewLoop(sys2, Options{Batch: 10, GoneRetries: 3})
	sys2.setGone("b", true)
	if _, err := l2.RunPass(); err != nil {
		t.Fatal(err)
	}
	sys2.setGone("b", false)
	st, err := l2.RunPass() // probe succeeds: b resurrects
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesChanged != 1 {
		t.Fatalf("resurrection not observed: %+v", st)
	}
	if s := l2.Status(); s.GoneTracked != 0 || s.PagesTracked != 3 {
		t.Fatalf("after resurrection: %+v", s)
	}
}

// TestLoopStartStop exercises the background goroutine lifecycle and the
// maintain.* metrics.
func TestLoopStartStop(t *testing.T) {
	sys := newFakeSys("a", "b", "c")
	reg := obs.NewRegistry()
	l := NewLoop(sys, Options{Interval: time.Millisecond, Batch: 2, Metrics: reg})
	l.Start()
	l.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for l.Status().Passes < 3 {
		if time.Now().After(deadline) {
			t.Fatal("loop made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	l.Stop()
	l.Stop() // idempotent
	st := l.Status()
	if st.Running {
		t.Fatal("still running after Stop")
	}
	passes := st.Passes
	time.Sleep(10 * time.Millisecond)
	if got := l.Status().Passes; got != passes {
		t.Fatalf("passes advanced after Stop: %d -> %d", passes, got)
	}
	if got := reg.Counter("maintain.passes").Value(); got != int64(passes) {
		t.Fatalf("maintain.passes = %d, want %d", got, passes)
	}
	if reg.Counter("maintain.pages.checked").Value() == 0 {
		t.Fatal("maintain.pages.checked never incremented")
	}
	if st.Totals.PagesChecked == 0 || st.LastPassAt.IsZero() {
		t.Fatalf("status totals not accumulated: %+v", st)
	}
}

// TestLoopRefreshError: a failing pass surfaces in Status and the error
// metric, and the loop keeps scheduling afterwards.
func TestLoopRefreshError(t *testing.T) {
	sys := newFakeSys("a", "b")
	reg := obs.NewRegistry()
	l := NewLoop(sys, Options{Batch: 2, Metrics: reg})
	sys.mu.Lock()
	sys.err = errBoom
	sys.mu.Unlock()
	if _, err := l.RunPass(); err == nil {
		t.Fatal("expected refresh error")
	}
	if st := l.Status(); st.LastErr == "" {
		t.Fatal("LastErr not recorded")
	}
	if reg.Counter("maintain.errors").Value() != 1 {
		t.Fatal("maintain.errors not incremented")
	}
	sys.mu.Lock()
	sys.err = nil
	sys.mu.Unlock()
	if _, err := l.RunPass(); err != nil {
		t.Fatal(err)
	}
	if st := l.Status(); st.LastErr != "" {
		t.Fatalf("LastErr sticky after recovery: %q", st.LastErr)
	}
}

// TestLoopAutoReconcile: a pass that updates or creates records triggers one
// Reconcile per configured concept, in declaration order; clean passes and
// loops with no ReconcileConcepts never call it.
func TestLoopAutoReconcile(t *testing.T) {
	sys := newFakeSys("a", "b", "c")
	reg := obs.NewRegistry()
	l := NewLoop(sys, Options{
		Batch:             10,
		ReconcileConcepts: []string{"restaurant", "hotel"},
		Metrics:           reg,
	})

	if _, err := l.RunPass(); err != nil { // nothing changed: no reconcile
		t.Fatal(err)
	}
	if got := sys.reconcileCalls(); len(got) != 0 {
		t.Fatalf("clean pass reconciled %v", got)
	}

	sys.setDirty("b")
	st, err := l.RunPass()
	if err != nil {
		t.Fatal(err)
	}
	if st.RecordsUpdated != 1 {
		t.Fatalf("dirty page did not update a record: %+v", st)
	}
	if got, want := sys.reconcileCalls(), []string{"restaurant", "hotel"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("reconcile calls = %v, want %v", got, want)
	}
	s := l.Status()
	if s.Reconciles != 1 || s.LastReconciled != 2 || s.Totals.RecordsReconciled != 2 {
		t.Fatalf("reconcile status not recorded: %+v", s)
	}
	if reg.Counter("maintain.reconcile.runs").Value() != 1 {
		t.Fatal("maintain.reconcile.runs not incremented")
	}
	if reg.Counter("maintain.reconcile.records").Value() != 2 {
		t.Fatal("maintain.reconcile.records not accumulated")
	}

	if _, err := l.RunPass(); err != nil { // back to clean: no further calls
		t.Fatal(err)
	}
	if got := sys.reconcileCalls(); len(got) != 2 {
		t.Fatalf("clean pass reconciled again: %v", got)
	}

	// No configured concepts: updates never reconcile.
	sys2 := newFakeSys("a", "b")
	l2 := NewLoop(sys2, Options{Batch: 10})
	sys2.setDirty("a")
	if _, err := l2.RunPass(); err != nil {
		t.Fatal(err)
	}
	if got := sys2.reconcileCalls(); len(got) != 0 {
		t.Fatalf("unconfigured loop reconciled %v", got)
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }
