// Package maintain runs the continuous incremental-maintenance loop: a
// background scheduler that keeps the web-of-concepts store converged with a
// changing corpus by feeding refresh cohorts through the builder's delta
// pipeline (core.Builder.Refresh) while the serving layer keeps answering
// reads.
//
// The loop owns only scheduling state — which URLs exist, when each was last
// checked, which vanished and still deserve resurrection probes. All data
// mutation happens inside System.Refresh, which the woc facade serializes
// against reads, so a pass is invisible to readers until it commits and
// bumps the epoch.
package maintain

import (
	"sort"
	"sync"
	"time"

	"conceptweb/internal/obs"
	"conceptweb/woc"
)

// System is the maintained surface. *woc.System satisfies it; tests
// substitute fakes to pin scheduling behavior without a real corpus.
type System interface {
	// PageURLs returns every URL currently in the page store, sorted.
	PageURLs() []string
	// Refresh re-fetches the given URLs and folds changes into the store.
	Refresh(urls []string) (woc.RefreshStats, error)
	// Reconcile re-enforces the concept's multiplicity constraints over the
	// record store, returning how many records changed.
	Reconcile(concept string) int
}

// Options configures a Loop. Zero values take the defaults below.
type Options struct {
	// Interval is the pause between passes (default 30s).
	Interval time.Duration
	// Batch is the cohort size per pass (default 64).
	Batch int
	// GoneRetries is how many passes a vanished URL stays in rotation as a
	// resurrection probe before the loop stops re-fetching it (default 3).
	GoneRetries int
	// ReconcileConcepts lists concepts whose multiplicity constraints are
	// re-enforced (System.Reconcile) after any pass that updated or created
	// records. Refresh folds new evidence into records one cohort at a time,
	// so constraint drift accumulates between full rebuilds; reconciling on
	// the write path keeps the store converged. Empty disables it.
	ReconcileConcepts []string
	// Metrics receives maintain.* instruments; nil disables them.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 30 * time.Second
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.GoneRetries <= 0 {
		o.GoneRetries = 3
	}
	return o
}

// Totals accumulates refresh counters across all passes of a Loop.
type Totals struct {
	PagesChecked      int
	PagesUnchanged    int
	PagesChanged      int
	PagesGone         int
	PagesRelinked     int
	RecordsUpdated    int
	RecordsCreated    int
	RecordsSuperseded int
	RecordsDeleted    int
	RecordsReconciled int
}

// Status is a point-in-time snapshot of the loop, safe to read while a pass
// is in flight (the pass's results land after it commits).
type Status struct {
	Running bool
	// Passes counts completed refresh passes; Sweeps counts completed full
	// corpus sweeps (every page known at sweep start refreshed at least
	// once since).
	Passes uint64
	Sweeps uint64
	// Reconciles counts passes that triggered a constraint-reconcile;
	// LastReconciled is how many records the most recent one changed.
	Reconciles     uint64
	LastReconciled int
	// PagesTracked is the scheduler's view of the corpus; GoneTracked is
	// how many vanished URLs still hold a resurrection-probe budget.
	PagesTracked int
	GoneTracked  int
	LastPassAt   time.Time
	LastErr      string
	LastStats    woc.RefreshStats
	Totals       Totals
}

// Loop schedules refresh cohorts oldest-first over the corpus. Create with
// NewLoop, drive manually with RunPass, or run continuously with Start/Stop.
type Loop struct {
	sys  System
	opts Options

	mu       sync.Mutex
	last     map[string]uint64 // url -> pass number of last refresh (0 = never)
	goneLeft map[string]int    // vanished url -> remaining probe budget
	pending  map[string]bool   // URLs still owed a refresh this sweep
	status   Status

	stopCh chan struct{}
	doneCh chan struct{}
}

// NewLoop creates a loop over sys; it does not start it.
func NewLoop(sys System, opts Options) *Loop {
	return &Loop{
		sys:      sys,
		opts:     opts.withDefaults(),
		last:     map[string]uint64{},
		goneLeft: map[string]int{},
		pending:  map[string]bool{},
	}
}

// Start launches the background goroutine: one pass immediately, then one
// per interval until Stop. Idempotent while running.
func (l *Loop) Start() {
	l.mu.Lock()
	if l.status.Running {
		l.mu.Unlock()
		return
	}
	l.status.Running = true
	l.stopCh = make(chan struct{})
	l.doneCh = make(chan struct{})
	stop, done := l.stopCh, l.doneCh
	l.mu.Unlock()

	go func() {
		defer close(done)
		timer := time.NewTimer(0) // first pass immediately
		defer timer.Stop()
		for {
			select {
			case <-stop:
				return
			case <-timer.C:
				l.RunPass()
				timer.Reset(l.opts.Interval)
			}
		}
	}()
}

// Stop halts the background goroutine and waits for any in-flight pass to
// finish, so the caller can tear down the system safely afterwards.
func (l *Loop) Stop() {
	l.mu.Lock()
	if !l.status.Running {
		l.mu.Unlock()
		return
	}
	l.status.Running = false
	stop, done := l.stopCh, l.doneCh
	l.mu.Unlock()
	close(stop)
	<-done
}

// Status returns a snapshot of the loop's progress.
func (l *Loop) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.status
	st.PagesTracked = len(l.last) - len(l.goneLeft)
	st.GoneTracked = len(l.goneLeft)
	return st
}

// RunPass executes one maintenance pass synchronously: pick the cohort of
// least-recently-checked URLs (never-checked first, then vanished URLs with
// probe budget, ordered by staleness), refresh it, and fold the outcome into
// scheduling state. Returns the pass's refresh stats.
func (l *Loop) RunPass() (woc.RefreshStats, error) {
	cohort, passNum := l.pickCohort()
	if len(cohort) == 0 {
		return woc.RefreshStats{}, nil
	}
	m := l.opts.Metrics
	stopTimer := m.TimeWindowed("maintain.pass")
	st, err := l.sys.Refresh(cohort)
	stopTimer()

	l.mu.Lock()
	l.status.Passes++
	l.status.LastPassAt = time.Now()
	if err != nil {
		l.status.LastErr = err.Error()
		l.mu.Unlock()
		m.Counter("maintain.errors").Inc()
		return st, err
	}
	l.status.LastErr = ""
	l.status.LastStats = st
	l.accumulate(st)

	// Reconcile scheduling state with the store: a cohort URL that is no
	// longer stored went (or stayed) gone — it keeps a decremented probe
	// budget so resurrection is discovered, then falls out of rotation. A
	// stored cohort URL is alive; clear any probe budget (resurrected).
	stored := map[string]bool{}
	for _, u := range l.sys.PageURLs() {
		stored[u] = true
	}
	for _, u := range cohort {
		l.last[u] = passNum
		delete(l.pending, u)
		if stored[u] {
			delete(l.goneLeft, u)
			continue
		}
		budget, tracked := l.goneLeft[u]
		if !tracked {
			budget = l.opts.GoneRetries
		}
		budget--
		if budget <= 0 {
			delete(l.goneLeft, u)
			delete(l.last, u)
			delete(l.pending, u)
		} else {
			l.goneLeft[u] = budget
		}
	}
	// Pages the pass discovered (or that appeared out of band) enter the
	// current sweep; pages that left without being in the cohort (e.g. an
	// external Refresh call) stop being owed one.
	for u := range l.pending {
		if !stored[u] && l.goneLeft[u] == 0 {
			delete(l.pending, u)
		}
	}
	if len(l.pending) == 0 {
		l.status.Sweeps++
		m.Counter("maintain.sweeps").Inc()
		for u := range stored {
			l.pending[u] = true
		}
	}

	m.Counter("maintain.passes").Inc()
	m.Counter("maintain.pages.checked").Add(int64(st.PagesChecked))
	m.Counter("maintain.pages.unchanged").Add(int64(st.PagesUnchanged))
	m.Counter("maintain.pages.changed").Add(int64(st.PagesChanged))
	m.Counter("maintain.pages.gone").Add(int64(st.PagesGone))
	m.Counter("maintain.pages.relinked").Add(int64(st.PagesRelinked))
	m.Counter("maintain.records.updated").Add(int64(st.RecordsUpdated))
	m.Counter("maintain.records.created").Add(int64(st.RecordsCreated))
	m.Counter("maintain.records.superseded").Add(int64(st.RecordsSuperseded))
	m.Counter("maintain.records.deleted").Add(int64(st.RecordsDeleted))
	l.mu.Unlock()

	// A pass that wrote records may have left a concept over its multiplicity
	// constraints (each cohort folds evidence in isolation); reconcile outside
	// the scheduler lock — System.Reconcile takes the system's own write lock
	// and Status must stay readable meanwhile.
	if st.RecordsUpdated+st.RecordsCreated > 0 && len(l.opts.ReconcileConcepts) > 0 {
		trimmed := 0
		for _, c := range l.opts.ReconcileConcepts {
			trimmed += l.sys.Reconcile(c)
		}
		m.Counter("maintain.reconcile.runs").Inc()
		m.Counter("maintain.reconcile.records").Add(int64(trimmed))
		l.mu.Lock()
		l.status.Reconciles++
		l.status.LastReconciled = trimmed
		l.status.Totals.RecordsReconciled += trimmed
		l.mu.Unlock()
	}
	return st, nil
}

// pickCohort chooses the next Batch URLs by staleness: never-checked URLs
// first, then ascending last-checked pass, ties broken by URL so scheduling
// is deterministic. Vanished URLs with probe budget stay in rotation.
func (l *Loop) pickCohort() ([]string, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()

	known := map[string]bool{}
	for _, u := range l.sys.PageURLs() {
		known[u] = true
		if _, ok := l.last[u]; !ok {
			l.last[u] = 0 // new page: maximally stale
		}
	}
	for u := range l.goneLeft {
		known[u] = true
	}
	// Drop state for URLs that left outside the gone-probe protocol.
	for u := range l.last {
		if !known[u] {
			delete(l.last, u)
			delete(l.pending, u)
		}
	}
	if len(l.pending) == 0 { // first pass: open the initial sweep
		for u := range known {
			l.pending[u] = true
		}
	}

	cand := make([]string, 0, len(known))
	for u := range known {
		cand = append(cand, u)
	}
	sort.Slice(cand, func(i, j int) bool {
		if l.last[cand[i]] != l.last[cand[j]] {
			return l.last[cand[i]] < l.last[cand[j]]
		}
		return cand[i] < cand[j]
	})
	if len(cand) > l.opts.Batch {
		cand = cand[:l.opts.Batch]
	}
	return cand, l.status.Passes + 1
}

// accumulate folds one pass's stats into the running totals.
func (l *Loop) accumulate(st woc.RefreshStats) {
	t := &l.status.Totals
	t.PagesChecked += st.PagesChecked
	t.PagesUnchanged += st.PagesUnchanged
	t.PagesChanged += st.PagesChanged
	t.PagesGone += st.PagesGone
	t.PagesRelinked += st.PagesRelinked
	t.RecordsUpdated += st.RecordsUpdated
	t.RecordsCreated += st.RecordsCreated
	t.RecordsSuperseded += st.RecordsSuperseded
	t.RecordsDeleted += st.RecordsDeleted
}
