package maintain

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"conceptweb/internal/serving"
	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

// churnFetcher serves a generated world with a global content version (bump
// it and every page's hash changes on next fetch) plus a per-URL gone set.
type churnFetcher struct {
	w       *webgen.World
	version atomic.Int64

	mu   sync.Mutex
	gone map[string]bool
}

func (c *churnFetcher) fetch(u string) (string, error) {
	c.mu.Lock()
	gone := c.gone[u]
	c.mu.Unlock()
	if gone {
		return "", fmt.Errorf("gone: %s", u)
	}
	h, err := c.w.Fetch(u)
	if err != nil {
		return "", err
	}
	return h + fmt.Sprintf("<!-- v%d -->", c.version.Load()), nil
}

func (c *churnFetcher) setGone(u string, gone bool) {
	c.mu.Lock()
	if gone {
		c.gone[u] = true
	} else {
		delete(c.gone, u)
	}
	c.mu.Unlock()
}

// TestStressReadsUnderMaintenanceLoop is the zero-downtime proof for the
// continuous maintenance loop: readers hammer the serving layer (cache off,
// so every read reaches the engine) while the background loop sweeps the
// corpus through content changes, a page loss, and its resurrection. Run
// under -race. It asserts:
//
//   - the loop completes at least 3 full corpus sweeps,
//   - every read succeeds and observed epochs are monotone per reader,
//   - reads observe only complete epochs: when the epoch is stable around a
//     Search, every record ID the results cite must resolve,
//   - read p99 stays bounded — a maintenance pass may briefly block readers
//     (it holds the write seam), but never starves them.
func TestStressReadsUnderMaintenanceLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("churn stress is a long test")
	}
	gcfg := webgen.DefaultConfig()
	gcfg.Restaurants = 12
	gcfg.ReviewArticles = 4
	gcfg.TVArticles = 2
	w := webgen.Generate(gcfg)
	cf := &churnFetcher{w: w, gone: map[string]bool{}}
	sys, err := woc.Build(cf.fetch, w.SeedURLs(),
		woc.WithLocalDomain(w.Cities(), webgen.Cuisines()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	l := serving.New(sys, serving.Options{CacheSize: -1, MaxInflight: -1, Metrics: sys.Metrics()})
	ctx := context.Background()

	var goneURL string
	for _, r := range w.Restaurants {
		if r.Homepage != "" {
			u := strings.TrimSuffix(r.Homepage, "/") + "/"
			if contains(sys.PageURLs(), u) {
				goneURL = u
				break
			}
		}
	}
	if goneURL == "" {
		t.Fatal("no stored restaurant homepage to take offline")
	}

	var queries []string
	for _, r := range w.Restaurants {
		queries = append(queries, r.Name+" "+r.City, "best "+r.Cuisine+" "+r.City)
	}

	loop := NewLoop(sys, Options{
		Interval:    time.Millisecond,
		Batch:       32,
		GoneRetries: 100, // resurrection must always be discovered
		Metrics:     sys.Metrics(),
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 4
	latCh := make(chan []time.Duration, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lats []time.Duration
			lastEpoch := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					latCh <- lats
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				e1 := l.Epoch()
				if e1 < lastEpoch {
					t.Errorf("reader %d: epoch went backwards %d -> %d", g, lastEpoch, e1)
				}
				lastEpoch = e1
				start := time.Now()
				page, err := l.Search(ctx, q, 8)
				lats = append(lats, time.Since(start))
				if err != nil {
					t.Errorf("search %q: %v", q, err)
					continue
				}
				// Complete-epoch invariant: if no maintenance pass committed
				// around this read, every record the results cite exists.
				var ids []string
				for _, d := range page.Results {
					ids = append(ids, d.RecordIDs...)
				}
				if page.Box != nil {
					ids = append(ids, page.Box.Record.ID)
				}
				consistent := true
				for _, id := range ids {
					if _, err := l.Record(ctx, id); errors.Is(err, woc.ErrNotFound) {
						consistent = false
					}
				}
				if e2 := l.Epoch(); e2 == e1 && !consistent {
					t.Errorf("epoch %d served results citing unresolvable records (query %q)", e1, q)
				}
			}
		}(g)
	}

	loop.Start()
	defer loop.Stop()
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				close(stop)
				wg.Wait()
				t.Fatalf("timed out waiting for %s; loop status %+v", what, loop.Status())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Sweep 1 completes against the initial corpus; then churn: content
	// change everywhere plus the target page going dark.
	waitFor("sweep 1", func() bool { return loop.Status().Sweeps >= 1 })
	cf.version.Add(1)
	cf.setGone(goneURL, true)
	waitFor("gone page retired", func() bool { return loop.Status().Totals.PagesGone >= 1 })

	// Sweep 2: the loop digests the change wave; then the page resurrects
	// with fresh content.
	waitFor("sweep 2", func() bool { return loop.Status().Sweeps >= 2 })
	cf.setGone(goneURL, false)
	cf.version.Add(1)
	waitFor("resurrection", func() bool { return contains(sys.PageURLs(), goneURL) })
	waitFor("sweep 3", func() bool { return loop.Status().Sweeps >= 3 })

	loop.Stop()
	close(stop)
	wg.Wait()

	st := loop.Status()
	if st.Sweeps < 3 {
		t.Fatalf("only %d full sweeps completed", st.Sweeps)
	}
	if st.Totals.PagesChanged == 0 || st.Totals.PagesGone == 0 {
		t.Fatalf("loop saw no churn: %+v", st.Totals)
	}
	if st.Totals.RecordsSuperseded == 0 {
		t.Fatalf("change wave retired no records: %+v", st.Totals)
	}

	var lats []time.Duration
	for g := 0; g < readers; g++ {
		lats = append(lats, <-latCh...)
	}
	if len(lats) < 200 {
		t.Fatalf("too few reads for a meaningful p99: %d", len(lats))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	// A read can wait behind at most one maintenance pass (the facade's
	// write seam); the bound fails if passes starve readers outright.
	if p99 > 2*time.Second {
		t.Fatalf("read p99 = %v under maintenance churn (n=%d, max=%v)",
			p99, len(lats), lats[len(lats)-1])
	}
	t.Logf("churn stress: %d reads, p50=%v p99=%v, loop %+v",
		len(lats), lats[len(lats)/2], p99, st.Totals)
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
