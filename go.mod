module conceptweb

go 1.22
