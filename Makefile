# Developer entry points. CI runs the same targets; keep them in sync with
# .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench benchshards benchscale scalecheck microbench profile crashtest servetest maintaintest loadtest fmt vet

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package, so tests that lean
# on leftover state from an earlier test fail loudly instead of passing by
# accident.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# crashtest runs the store's fault-injection and crash-recovery suites under
# the race detector: crash-at-every-truncation-point replay, write kills at
# every byte offset, syscall faults on every Compact step, the codec
# corruption matrix, and the per-shard fault isolation suite (a write kill
# in one shard's WAL must latch only that shard). -count=1 defeats test
# caching so CI always re-proves the durability contract.
crashtest:
	$(GO) test -race -count=1 -v \
		-run 'Crash|Fault|Torn|Recovery|Corrupt|Degraded|Killed|Seq|Frame|Shard|Manifest|Legacy' \
		./internal/lrec/

# servetest runs the serving-layer suites under the race detector: concurrent
# Search/Aggregate traffic hammered against in-flight Refresh and Reconcile,
# the post-refresh staleness pin, coalescing, shedding, and the HTTP 503/504
# mapping in wocserve. -count=1 defeats test caching so every CI run
# re-proves the read/maintenance lock.
servetest:
	$(GO) test -race -count=1 -v ./internal/serving/ ./cmd/wocserve/

# maintaintest runs the continuous-maintenance suites under the race
# detector: the scheduler's cohort/sweep/gone-probe unit tests, the churn
# stress (serving-layer readers hammering the system across >=3 full
# background sweeps with a page loss and resurrection, p99 read bound), and
# the delta-vs-rebuild equivalence matrix (incremental passes must land on
# bit-identical store content and search results as a fresh build, at every
# workers x shards combination). -count=1 defeats test caching.
maintaintest:
	$(GO) test -race -count=1 -v ./internal/maintain/
	$(GO) test -race -count=1 -v -run 'TestDeltaRefreshConvergesToRebuild|TestRefresh|TestRemove|TestStoreDelete' \
		./internal/core/ ./internal/index/ ./internal/webgraph/

# bench runs the end-to-end construction benchmark at 1, 4, and 8 workers
# (via -cpu, which also sets GOMAXPROCS and hence the default pool size) and
# archives the per-stage trace metrics. -benchtime=1x -count=3 keeps it fast
# enough for CI while still exposing run-to-run variance.
# Both bench targets report numcpu/gomaxprocs custom metrics, so the
# archived output records the host parallelism it was measured on.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBuildPipeline' -benchtime=1x -count=3 -cpu 1,4,8 . | tee bench-pipeline.txt

# benchshards sweeps the construction pipeline over the (workers x shards)
# grid — the store/index partitioning cost curve archived as BENCH_PR7.json.
benchshards:
	$(GO) test -run '^$$' -bench 'BenchmarkBuildShards' -benchtime=1x -count=3 . | tee bench-shards.txt

# benchscale measures the corpus-scale streamed build: heavy-tail worlds at
# increasing page counts run through BuildStream with the disk-backed page
# store, one process per size so every peak-RSS sample (VmHWM) is isolated.
# Each run appends a JSON line via -stats-json (including per-stage wall
# times); the lines are assembled into $(SCALE_OUT) — the scaling curve
# (pages vs wall vs per-stage ms vs peak RSS). Override SCALE_SIZES /
# SCALE_RSS_CEILING / SCALE_OUT for a quick smoke: CI runs a single 20k-page
# world into a scratch file (so the committed baseline curve is untouched)
# and fails the build if peak RSS crosses a fixed ceiling, which is the
# bounded-memory property under regression test.
SCALE_SIZES ?= 20000 50000 100000
SCALE_RSS_CEILING ?= 0
SCALE_OUT ?= BENCH_PR10.json

benchscale:
	$(GO) build -o bin/wocbuild ./cmd/wocbuild
	@set -e; \
	rm -f benchscale-lines.json; \
	for n in $(SCALE_SIZES); do \
		rm -rf bin/benchscale-pages; \
		./bin/wocbuild -world-profile heavytail -pages $$n \
			-page-store bin/benchscale-pages -stats-json benchscale-lines.json \
			-rss-ceiling $(SCALE_RSS_CEILING); \
	done; \
	{ echo '{"bench": "corpus-scale streamed build (heavy-tail world, disk page store)",'; \
	  echo ' "rss_ceiling_bytes": $(SCALE_RSS_CEILING),'; \
	  echo ' "runs": ['; \
	  sed '$$!s/$$/,/' benchscale-lines.json; \
	  echo ']}'; } > $(SCALE_OUT); \
	rm -f benchscale-lines.json bin/wocbuild; rm -rf bin/benchscale-pages; \
	cat $(SCALE_OUT)

# scalecheck compares a freshly measured scaling curve against the committed
# baseline (BENCH_PR10.json): for each page count present in both, the ratio
# of link+resolve wall time to the linear stages (ingest+extract+index) must
# stay within a slack factor of the baseline's ratio. The stage-time ratio is
# host-speed independent, so this catches the super-linear
# matching/resolution regression class on any runner. Typical use after the
# CI smoke:
#   make benchscale SCALE_SIZES=20000 SCALE_OUT=bench-scale-smoke.json
#   make scalecheck SCALE_CURVE=bench-scale-smoke.json
SCALE_CURVE ?= bench-scale-smoke.json
SCALE_BASELINE ?= BENCH_PR10.json

scalecheck:
	$(GO) run ./cmd/scalecheck -curve $(SCALE_CURVE) -baseline $(SCALE_BASELINE)

# microbench runs the hot-path microbenchmarks with allocation stats:
# tokenization, repeated-group discovery, TF-IDF scoring, §5.4 text matching,
# and collective resolution. These are the functions the extract/link/resolve
# stages spend their time in; -benchmem makes allocation regressions visible
# next to the ns/op numbers. The match benchmarks include *Reference
# variants running the retained naive scorers, so the archived output shows
# the pruned/blocked speedup alongside the absolute numbers.
microbench:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkTokenize|BenchmarkTokenizeInto|BenchmarkTopTerms|BenchmarkRepeatedGroups|BenchmarkMatchTokens|BenchmarkResolve' \
		-benchmem ./internal/textproc/ ./internal/extract/ ./internal/match/ | tee bench-micro.txt

# loadtest smoke-drives a freshly built wocserve with wocload's
# logsim-derived workload: two low QPS levels for a few seconds each, report
# archived as loadtest-report.json. wocload waits for /healthz, splits
# hit/miss via the X-Woc-Trace/X-Woc-Cache headers, and exits non-zero if
# the sweep completes zero requests — so CI catches a server that builds but
# cannot serve.
loadtest:
	$(GO) build -o bin/wocserve ./cmd/wocserve
	$(GO) build -o bin/wocload ./cmd/wocload
	@set -e; \
	./bin/wocserve -addr 127.0.0.1:8639 & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	./bin/wocload -addr http://127.0.0.1:8639 -qps 20,40 -duration 3s \
		-out loadtest-report.json

# profile builds the demo world end to end at one worker and writes pprof
# CPU and heap profiles. Inspect with: go tool pprof build.pprof
profile:
	$(GO) run ./cmd/wocbuild -workers 1 -v -out /tmp/wocprofile \
		-cpuprofile build.pprof -memprofile mem.pprof

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
