# Developer entry points. CI runs the same targets; keep them in sync with
# .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the end-to-end construction benchmark at 1, 4, and 8 workers
# (via -cpu, which also sets GOMAXPROCS and hence the default pool size) and
# archives the per-stage trace metrics. -benchtime=1x -count=3 keeps it fast
# enough for CI while still exposing run-to-run variance.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBuildPipeline' -benchtime=1x -count=3 -cpu 1,4,8 . | tee bench-pipeline.txt

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
