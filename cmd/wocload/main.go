// Command wocload is the load harness for wocserve: it replays a workload
// derived from the logsim behaviour model (zipfian query popularity over the
// simulated users' vocabulary, Poisson session arrivals) against a running
// server, sweeping target QPS levels, and reports the client-side view —
// per-endpoint latency quantiles with the exact hit/miss/coalesced/shed
// split read from the X-Woc-Cache response header, error and shed rates per
// level, and the QPS at which the serving layer's admission control started
// shedding.
//
//	wocserve -addr 127.0.0.1:8639 &
//	wocload -addr http://127.0.0.1:8639 -qps 50,100,200,400 -duration 10s \
//	        -out BENCH_PR6.json
//
// The world seed must match the server's so the query vocabulary lines up
// with the indexed corpus. With -slo-p99 the process exits non-zero when the
// search p99 at the lowest (healthy) level exceeds the bound, making the
// sweep usable as a CI regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"conceptweb/internal/loadgen"
	"conceptweb/internal/logsim"
	"conceptweb/internal/webgen"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "http://127.0.0.1:8639", "base URL of the running wocserve")
	seed := flag.Int64("seed", 1, "world seed (must match the server's -seed)")
	qpsList := flag.String("qps", "50,100,200,400", "comma-separated target QPS levels")
	duration := flag.Duration("duration", 10*time.Second, "time spent at each level")
	maxSessions := flag.Int("max-sessions", loadgen.DefaultMaxSessions,
		"client-side cap on concurrently running sessions")
	sloP99 := flag.Duration("slo-p99", 0,
		"fail (exit 1) if the lowest level's p99 for -slo-endpoint exceeds this (0 disables)")
	sloEndpoint := flag.String("slo-endpoint", "search", "endpoint the -slo-p99 assert applies to")
	note := flag.String("note", "", "free-form note recorded in the report (e.g. server flags)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	flag.Parse()

	levels, err := parseLevels(*qpsList)
	if err != nil {
		log.Fatalf("wocload: %v", err)
	}

	// Rebuild the same world the server indexed and run the behaviour model
	// over it; the emitted log corpus defines the query vocabulary and its
	// popularity ranking.
	cfg := webgen.DefaultConfig()
	cfg.Seed = *seed
	world := webgen.Generate(cfg)
	simCfg := logsim.DefaultConfig()
	simCfg.Seed = *seed
	logs := logsim.NewSimulator(world, simCfg).Run()
	w, err := loadgen.FromLogs(logs, *seed)
	if err != nil {
		log.Fatalf("wocload: %v", err)
	}
	log.Printf("workload: %d unique queries from %d logged events", len(w.Queries()), len(logs.Queries))

	if err := waitHealthy(*addr, 30*time.Second); err != nil {
		log.Fatalf("wocload: %v", err)
	}
	n, err := loadgen.Bootstrap(w, *addr, nil)
	if err != nil {
		log.Fatalf("wocload: %v", err)
	}
	log.Printf("bootstrap: harvested %d record IDs", n)

	rep, runErr := loadgen.Run(w, loadgen.Options{
		BaseURL:     *addr,
		Levels:      levels,
		Duration:    *duration,
		MaxSessions: *maxSessions,
		SLOP99:      *sloP99,
		SLOEndpoint: *sloEndpoint,
		Logf:        log.Printf,
	})
	if rep == nil {
		log.Fatalf("wocload: %v", runErr)
	}
	rep.Seed = *seed
	rep.Notes = *note

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("wocload: encode report: %v", err)
	}
	body = append(body, '\n')
	if *out == "" {
		os.Stdout.Write(body) //nolint:errcheck
	} else if err := os.WriteFile(*out, body, 0o644); err != nil {
		log.Fatalf("wocload: write %s: %v", *out, err)
	} else {
		log.Printf("report written to %s", *out)
	}
	if rep.ShedOnsetQPS > 0 {
		log.Printf("shed onset at %.0f qps", rep.ShedOnsetQPS)
	}
	var total int64
	for _, lv := range rep.Levels {
		total += lv.Requests
	}
	if total == 0 {
		log.Fatalf("wocload: sweep completed zero requests; server unreachable or workload empty")
	}
	if runErr != nil {
		log.Fatalf("wocload: %v", runErr)
	}
}

// parseLevels parses "50,100,200" into QPS levels.
func parseLevels(s string) ([]float64, error) {
	var levels []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad QPS level %q", part)
		}
		levels = append(levels, v)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("no QPS levels in %q", s)
	}
	return levels, nil
}

// waitHealthy polls /healthz until the server answers 200 (it spends a while
// building the world before listening).
func waitHealthy(baseURL string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %v", baseURL, timeout, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
}
