package main

import (
	"time"

	"conceptweb/internal/serving"
	"conceptweb/woc"
)

// delaySource decorates the system with -compute-delay: each cached
// computation sleeps before answering, emulating an I/O- or corpus-bound
// compute path so load tests can drive the admission controller into
// shedding on worlds small enough to otherwise answer in microseconds.
// Point lookups (Record, Lineage) stay fast — they are not computations the
// result cache fronts.
type delaySource struct {
	serving.Source
	d time.Duration
}

func (s *delaySource) Search(q string, k int) *woc.Page {
	time.Sleep(s.d)
	return s.Source.Search(q, k)
}

func (s *delaySource) ConceptSearch(q string, k int) []woc.Hit {
	time.Sleep(s.d)
	return s.Source.ConceptSearch(q, k)
}

func (s *delaySource) Aggregate(id string) (*woc.Aggregation, error) {
	time.Sleep(s.d)
	return s.Source.Aggregate(id)
}

func (s *delaySource) Alternatives(id string, k int) ([]woc.Suggestion, error) {
	time.Sleep(s.d)
	return s.Source.Alternatives(id, k)
}

func (s *delaySource) Augmentations(id string, k int) ([]woc.Suggestion, error) {
	time.Sleep(s.d)
	return s.Source.Augmentations(id, k)
}
