package main

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"conceptweb/internal/serving"
)

// accessLog emits sampled one-line JSON access records built from finished
// request traces. Sampling is deterministic (every Nth request, N derived
// from the configured rate) so a fixed fraction of traffic is logged without
// per-request randomness. A nil *accessLog is fully disabled: the hot path
// pays one nil check and allocates nothing (pinned by a test).
type accessLog struct {
	every uint64 // log every Nth request
	n     atomic.Uint64
	mu    sync.Mutex
	out   io.Writer
}

// newAccessLog builds a sampler logging roughly rate of all requests
// (1 = every request). rate <= 0 disables logging entirely by returning nil.
func newAccessLog(rate float64, out io.Writer) *accessLog {
	if rate <= 0 || out == nil {
		return nil
	}
	if rate > 1 {
		rate = 1
	}
	return &accessLog{every: uint64(math.Round(1 / rate)), out: out}
}

// accessRecord is the one-line JSON shape. Durations are milliseconds for
// human grep-ability; the full-precision trace stays resolvable via
// /debug/trace?id= while it is in the ring.
type accessRecord struct {
	Trace       string  `json:"trace"`
	Endpoint    string  `json:"endpoint"`
	Arg         string  `json:"arg,omitempty"`
	Status      int     `json:"status"`
	Cache       string  `json:"cache,omitempty"` // hit/miss/coalesced/shed
	Results     int     `json:"results"`
	MS          float64 `json:"ms"`
	AdmissionMS float64 `json:"admission_ms,omitempty"`
	ComputeMS   float64 `json:"compute_ms,omitempty"`
	Epoch       uint64  `json:"epoch,omitempty"`
	Err         string  `json:"err,omitempty"`
}

func ms(d float64) float64 { return math.Round(d*1000) / 1000 }

// log records one finished trace if the sampler selects it.
func (a *accessLog) log(tr *serving.Trace) {
	if a == nil || tr == nil {
		return
	}
	if a.n.Add(1)%a.every != 0 {
		return
	}
	line, err := json.Marshal(accessRecord{
		Trace:       tr.ID,
		Endpoint:    tr.Endpoint,
		Arg:         tr.Arg,
		Status:      tr.Status,
		Cache:       string(tr.Disposition),
		Results:     tr.Results,
		MS:          ms(tr.Total.Seconds() * 1000),
		AdmissionMS: ms(tr.AdmissionWait.Seconds() * 1000),
		ComputeMS:   ms(tr.Compute.Seconds() * 1000),
		Epoch:       tr.Epoch,
		Err:         tr.Err,
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	a.out.Write(line) //nolint:errcheck // best-effort logging
	a.mu.Unlock()
}
