package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"conceptweb/internal/maintain"
	"conceptweb/internal/serving"
)

// TestTraceHeadersAndDebugTrace follows a request's trace end to end: the
// response carries X-Woc-Trace and X-Woc-Cache, and the ID resolves at
// /debug/trace with the serving-layer annotations attached.
func TestTraceHeadersAndDebugTrace(t *testing.T) {
	w, srv := server(t)
	q := url.QueryEscape(w.Restaurants[0].Name + " trace probe")

	get := func() *http.Response {
		resp, err := http.Get(srv.URL + "/search?q=" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}

	first := get()
	id := first.Header.Get("X-Woc-Trace")
	if !strings.HasPrefix(id, "woc-") {
		t.Fatalf("X-Woc-Trace = %q, want woc-… ID", id)
	}
	if disp := first.Header.Get("X-Woc-Cache"); disp != "miss" && disp != "coalesced" {
		t.Errorf("first X-Woc-Cache = %q, want miss (cold cache)", disp)
	}
	second := get()
	if disp := second.Header.Get("X-Woc-Cache"); disp != "hit" {
		t.Errorf("second X-Woc-Cache = %q, want hit", disp)
	}
	if second.Header.Get("X-Woc-Trace") == id {
		t.Error("trace IDs not unique across requests")
	}

	var tr serving.Trace
	if code := getJSON(t, srv, "/debug/trace?id="+id, &tr); code != 200 {
		t.Fatalf("debug/trace status = %d", code)
	}
	if tr.ID != id || tr.Endpoint != "search" {
		t.Errorf("trace = %+v, want id %s endpoint search", tr, id)
	}
	if tr.Disposition == serving.DispositionNone || tr.Status != 200 || tr.Total <= 0 {
		t.Errorf("trace missing annotations: %+v", tr)
	}
	if tr.Arg == "" || tr.Epoch == 0 {
		t.Errorf("trace arg/epoch not annotated: %+v", tr)
	}

	if code := getJSON(t, srv, "/debug/trace?id=woc-00000000-00000000", nil); code != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", code)
	}
	if code := getJSON(t, srv, "/debug/trace", nil); code != http.StatusBadRequest {
		t.Errorf("missing id status = %d, want 400", code)
	}
}

// TestSlowlogEndpoint drives traffic and checks /debug/slowlog retains the
// slowest traces per endpoint, slowest first, with annotations.
func TestSlowlogEndpoint(t *testing.T) {
	w, srv := server(t)
	for i, r := range w.Restaurants {
		if i >= 5 {
			break
		}
		getJSON(t, srv, "/search?q="+url.QueryEscape(r.Name), nil)
	}
	var slow map[string][]serving.Trace
	if code := getJSON(t, srv, "/debug/slowlog", &slow); code != 200 {
		t.Fatalf("slowlog status = %d", code)
	}
	entries := slow["search"]
	if len(entries) == 0 {
		t.Fatal("slowlog has no search entries after traffic")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Total > entries[i-1].Total {
			t.Errorf("slowlog not slowest-first: [%d]=%v > [%d]=%v",
				i, entries[i].Total, i-1, entries[i-1].Total)
		}
	}
	if e := entries[0]; e.ID == "" || e.Status != 200 || e.Disposition == serving.DispositionNone {
		t.Errorf("slowlog entry missing annotations: %+v", e)
	}
}

// TestMetricsPrometheusFormat checks ?format=prometheus serves text
// exposition with the per-endpoint families and rolling-window gauges.
func TestMetricsPrometheusFormat(t *testing.T) {
	w, srv := server(t)
	getJSON(t, srv, "/search?q="+url.QueryEscape(w.Restaurants[0].Name), nil)

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"woc_http_req_search_total ",
		`woc_http_latency_search_bucket{le="+Inf"}`,
		"woc_http_latency_search_count ",
		"woc_http_window_search_window_p99 ",
		"# TYPE woc_http_req_search_total counter",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestWindowedMetricsInSnapshot checks the JSON /metrics snapshot carries the
// per-endpoint rolling windows next to the cumulative histograms.
func TestWindowedMetricsInSnapshot(t *testing.T) {
	w, srv := server(t)
	getJSON(t, srv, "/search?q="+url.QueryEscape(w.Restaurants[0].Name), nil)

	var snap struct {
		Windowed map[string]struct {
			Count int64   `json:"count"`
			P99   float64 `json:"p99"`
		} `json:"windowed"`
		WindowedCounters map[string]struct {
			Count int64 `json:"count"`
		} `json:"windowed_counters"`
	}
	if code := getJSON(t, srv, "/metrics", &snap); code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	if win := snap.Windowed["http.window.search"]; win.Count < 1 {
		t.Errorf("http.window.search rolling window = %+v, want observations", win)
	}
	// The err/shed windows exist (zero) as soon as the endpoint is wired.
	if _, ok := snap.WindowedCounters["http.window.err.search"]; !ok {
		t.Error("missing http.window.err.search rolling counter")
	}
	if _, ok := snap.WindowedCounters["http.window.shed.search"]; !ok {
		t.Error("missing http.window.shed.search rolling counter")
	}
}

// TestAccessLogSampling unit-tests the sampler: rate 1 logs every request as
// parseable one-line JSON; rate 0.5 logs every 2nd; the disabled logger is
// nil and its hot path allocates nothing.
func TestAccessLogSampling(t *testing.T) {
	tr := serving.NewTrace("search")
	tr.Finish(200, 3*time.Millisecond, nil)

	var buf bytes.Buffer
	all := newAccessLog(1, &buf)
	for i := 0; i < 3; i++ {
		all.log(tr)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("rate 1 logged %d lines, want 3", len(lines))
	}
	var rec accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access line not JSON: %v", err)
	}
	if rec.Trace != tr.ID || rec.Endpoint != "search" || rec.Status != 200 || rec.MS != 3 {
		t.Errorf("access record = %+v", rec)
	}

	buf.Reset()
	half := newAccessLog(0.5, &buf)
	for i := 0; i < 10; i++ {
		half.log(tr)
	}
	if got := strings.Count(buf.String(), "\n"); got != 5 {
		t.Errorf("rate 0.5 logged %d of 10", got)
	}

	if off := newAccessLog(0, &buf); off != nil {
		t.Fatal("rate 0 should disable the logger entirely")
	}
}

// TestAccessLogDisabledZeroAlloc pins the ISSUE 6 requirement: with sampling
// off (nil logger), the access-log call on the request hot path allocates
// nothing.
func TestAccessLogDisabledZeroAlloc(t *testing.T) {
	tr := serving.NewTrace("search")
	tr.Finish(200, time.Millisecond, nil)
	var off *accessLog
	if n := testing.AllocsPerRun(1000, func() { off.log(tr) }); n != 0 {
		t.Errorf("disabled access log allocates %v per call, want 0", n)
	}
}

// TestDebugMaintainEndpoint covers both shapes of /debug/maintain: the
// disabled stub when no loop runs, and the live status snapshot when one
// does.
func TestDebugMaintainEndpoint(t *testing.T) {
	_, srv := server(t) // no loop wired
	var off struct {
		Enabled bool `json:"enabled"`
	}
	if code := getJSON(t, srv, "/debug/maintain", &off); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if off.Enabled {
		t.Fatal("loopless server reports maintenance enabled")
	}

	loop := maintain.NewLoop(tsys, maintain.Options{Batch: 4, Metrics: tsys.Metrics()})
	if _, err := loop.RunPass(); err != nil {
		t.Fatal(err)
	}
	svc := serving.New(tsys, serving.Options{Metrics: tsys.Metrics()})
	srv2 := httptest.NewServer(newMux(tsys, svc, loop, 10*time.Second, false, nil))
	defer srv2.Close()
	var on struct {
		Enabled bool   `json:"enabled"`
		Epoch   uint64 `json:"epoch"`
		Status  struct {
			Passes uint64 `json:"Passes"`
			Totals struct {
				PagesChecked int `json:"PagesChecked"`
			} `json:"Totals"`
		} `json:"status"`
	}
	if code := getJSON(t, srv2, "/debug/maintain", &on); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !on.Enabled || on.Status.Passes != 1 || on.Status.Totals.PagesChecked != 4 {
		t.Fatalf("unexpected maintain status: %+v", on)
	}
}
