// Command wocserve builds the system over the synthetic web and serves it
// over HTTP as JSON — the "next generation of search engines" surface:
//
//	GET /search?q=...&k=8        web search with concept box
//	GET /concepts?q=...&k=8      concept search
//	GET /record?id=...           one record
//	GET /aggregate?id=...        aggregation page
//	GET /alternatives?id=...     substitute recommendations
//	GET /augmentations?id=...    complement recommendations
//	GET /lineage?id=...          provenance explanation
//	GET /healthz                 liveness
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:8639", "listen address")
	seed := flag.Int64("seed", 1, "world seed")
	flag.Parse()

	cfg := webgen.DefaultConfig()
	cfg.Seed = *seed
	w := webgen.Generate(cfg)
	sys, err := woc.Build(w.Fetch, w.SeedURLs(), woc.WithLocalDomain(w.Cities(), webgen.Cuisines()))
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	log.Printf("built: %+v", sys.Stats())
	mux := newMux(sys)
	log.Printf("serving on http://%s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// newMux wires the JSON API over a built system.
func newMux(sys *woc.System) *http.ServeMux {
	writeJSON := func(rw http.ResponseWriter, v any) {
		rw.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(rw).Encode(v); err != nil {
			log.Printf("encode: %v", err)
		}
	}
	fail := func(rw http.ResponseWriter, code int, err error) {
		http.Error(rw, fmt.Sprintf(`{"error":%q}`, err.Error()), code)
	}
	kOf := func(r *http.Request) int {
		if k, err := strconv.Atoi(r.URL.Query().Get("k")); err == nil && k > 0 {
			return k
		}
		return 8
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, map[string]any{"ok": true, "stats": sys.Stats()})
	})
	mux.HandleFunc("/search", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			fail(rw, http.StatusBadRequest, fmt.Errorf("missing q"))
			return
		}
		writeJSON(rw, sys.Search(q, kOf(r)))
	})
	mux.HandleFunc("/concepts", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			fail(rw, http.StatusBadRequest, fmt.Errorf("missing q"))
			return
		}
		writeJSON(rw, sys.ConceptSearch(q, kOf(r)))
	})
	mux.HandleFunc("/record", func(rw http.ResponseWriter, r *http.Request) {
		rec, err := sys.Record(r.URL.Query().Get("id"))
		if err != nil {
			fail(rw, http.StatusNotFound, err)
			return
		}
		writeJSON(rw, rec)
	})
	mux.HandleFunc("/aggregate", func(rw http.ResponseWriter, r *http.Request) {
		page, err := sys.Aggregate(r.URL.Query().Get("id"))
		if err != nil {
			fail(rw, http.StatusNotFound, err)
			return
		}
		writeJSON(rw, page)
	})
	mux.HandleFunc("/alternatives", func(rw http.ResponseWriter, r *http.Request) {
		recs, err := sys.Alternatives(r.URL.Query().Get("id"), kOf(r))
		if err != nil {
			fail(rw, http.StatusNotFound, err)
			return
		}
		writeJSON(rw, recs)
	})
	mux.HandleFunc("/augmentations", func(rw http.ResponseWriter, r *http.Request) {
		recs, err := sys.Augmentations(r.URL.Query().Get("id"), kOf(r))
		if err != nil {
			fail(rw, http.StatusNotFound, err)
			return
		}
		writeJSON(rw, recs)
	})
	mux.HandleFunc("/lineage", func(rw http.ResponseWriter, r *http.Request) {
		lines, err := sys.Lineage(r.URL.Query().Get("id"))
		if err != nil {
			fail(rw, http.StatusNotFound, err)
			return
		}
		writeJSON(rw, lines)
	})
	return mux
}
