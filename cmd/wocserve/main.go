// Command wocserve builds the system over the synthetic web and serves it
// over HTTP as JSON — the "next generation of search engines" surface:
//
//	GET /search?q=...&k=8        web search with concept box
//	GET /concepts?q=...&k=8      concept search
//	GET /record?id=...           one record
//	GET /aggregate?id=...        aggregation page
//	GET /alternatives?id=...     substitute recommendations
//	GET /augmentations?id=...    complement recommendations
//	GET /lineage?id=...          provenance explanation
//	GET /healthz                 liveness
//	GET /metrics                 JSON metrics snapshot (counters, gauges,
//	                             per-endpoint latency histograms, rolling
//	                             per-endpoint windows); ?format=prometheus
//	                             serves the same snapshot as Prometheus text
//	GET /debug/slowlog           per-endpoint top-K slowest traces
//	GET /debug/trace?id=...      one recent trace by X-Woc-Trace ID
//	GET /debug/maintain          maintenance-loop status (passes, sweeps,
//	                             cumulative refresh totals)
//	GET /debug/vars              expvar (same snapshot + runtime memstats)
//	GET /debug/pprof/...         CPU/heap/goroutine profiling (with -pprof)
//
// Every request is traced: the response carries X-Woc-Trace (the trace ID,
// resolvable at /debug/trace while it is among the last -trace-ring
// requests) and X-Woc-Cache (hit/miss/coalesced/shed) headers, and the
// slowest -slowlog-k requests per endpoint are retained with their full
// annotations at /debug/slowlog. With -log-sample > 0, that fraction of
// requests is emitted as one-line JSON access records on stderr.
//
// Requests flow through the serving layer (internal/serving): a sharded
// LRU+TTL result cache keyed by (endpoint, normalized query, epoch) — one
// Refresh invalidates everything in O(1) — singleflight coalescing of
// identical cache misses, and admission control that sheds overload with
// 503 + Retry-After instead of queueing unboundedly. Tune it with
// -cache-size, -cache-ttl, -max-inflight, -admit-wait, -request-timeout.
//
// Every endpoint is wrapped in observability middleware: request counts,
// in-flight gauge, status-code counters, and latency histograms, all in the
// system's shared obs registry. The server runs with read/write/idle
// timeouts and drains in-flight requests on SIGINT/SIGTERM, logging uptime
// and a final metrics snapshot on exit.
//
// With -refresh-interval > 0 the server runs the continuous maintenance
// loop (internal/maintain) in the background: every interval it re-fetches
// the -refresh-batch least-recently-checked pages and folds content
// changes, disappearances, and resurrections into the live system while
// reads keep flowing. Watch it at /debug/maintain and in the maintain.*
// metrics.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"conceptweb/internal/maintain"
	"conceptweb/internal/obs"
	"conceptweb/internal/serving"
	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:8639", "listen address")
	seed := flag.Int64("seed", 1, "world seed")
	shards := flag.Int("shards", 0,
		"hash-partition count for the store and indexes (0 or 1 = single partition); results are identical at any value")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	cacheSize := flag.Int("cache-size", serving.DefaultCacheSize,
		"result cache capacity in entries across all shards (negative disables caching)")
	cacheTTL := flag.Duration("cache-ttl", serving.DefaultCacheTTL,
		"result cache entry TTL (negative disables expiry)")
	maxInflight := flag.Int("max-inflight", serving.DefaultMaxInflight,
		"max concurrently computing requests before load shedding (negative removes the bound)")
	admitWait := flag.Duration("admit-wait", serving.DefaultAdmitWait,
		"how long an over-limit request may wait for a compute slot before a 503")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second,
		"per-request context deadline")
	traceRing := flag.Int("trace-ring", serving.DefaultTraceRing,
		"how many recent traces stay resolvable at /debug/trace")
	slowlogK := flag.Int("slowlog-k", serving.DefaultSlowlogK,
		"slowest traces retained per endpoint at /debug/slowlog")
	logSample := flag.Float64("log-sample", 0,
		"fraction of requests to emit as JSON access-log lines (0 disables, 1 logs all)")
	refreshInterval := flag.Duration("refresh-interval", 0,
		"pause between background maintenance passes (0 disables the loop)")
	refreshBatch := flag.Int("refresh-batch", 64,
		"pages re-checked per maintenance pass, least-recently-checked first")
	computeDelay := flag.Duration("compute-delay", 0,
		"inject artificial latency into each cache-miss computation (load-testing aid: "+
			"emulates production-scale corpora where computes cost milliseconds, so admission "+
			"control and shedding can be exercised against the small synthetic world)")
	flag.Parse()

	cfg := webgen.DefaultConfig()
	cfg.Seed = *seed
	w := webgen.Generate(cfg)
	sys, err := woc.Build(w.Fetch, w.SeedURLs(),
		woc.WithLocalDomain(w.Cities(), webgen.Cuisines()), woc.WithShards(*shards))
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	log.Printf("built: %+v", sys.Stats())
	if sh := sys.StoreHealth(); sh.TornTailRepaired {
		log.Printf("store recovery: truncated %d-byte torn log tail (previous process crashed mid-append)", sh.TruncatedBytes)
	}
	if tr := sys.BuildTrace(); tr != nil {
		log.Printf("build stages:\n%s", tr.Table())
	}

	var src serving.Source = sys
	if *computeDelay > 0 {
		log.Printf("load-testing: +%s per cache-miss computation", *computeDelay)
		src = &delaySource{Source: sys, d: *computeDelay}
	}
	svc := serving.New(src, serving.Options{
		CacheSize:   *cacheSize,
		CacheTTL:    *cacheTTL,
		MaxInflight: *maxInflight,
		AdmitWait:   *admitWait,
		Metrics:     sys.Metrics(),
		TraceRing:   *traceRing,
		SlowlogK:    *slowlogK,
	})
	log.Printf("serving layer: cache %d entries (ttl %s), max-inflight %d (admit wait %s), request timeout %s",
		*cacheSize, *cacheTTL, *maxInflight, *admitWait, *reqTimeout)

	var loop *maintain.Loop
	if *refreshInterval > 0 {
		loop = maintain.NewLoop(sys, maintain.Options{
			Interval: *refreshInterval,
			Batch:    *refreshBatch,
			// Re-enforce multiplicity constraints whenever a pass writes
			// records, so incremental refreshes can't drift the store.
			ReconcileConcepts: []string{"restaurant"},
			Metrics:           sys.Metrics(),
		})
		loop.Start()
		log.Printf("maintenance loop: %d pages per pass, one pass per %s", *refreshBatch, *refreshInterval)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(sys, svc, loop, *reqTimeout, *enablePprof, newAccessLog(*logSample, os.Stderr)),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on http://%s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Drain in-flight requests, then report what the process did.
	log.Printf("shutdown: draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if loop != nil {
		// Let any in-flight maintenance pass commit before the store closes.
		loop.Stop()
		st := loop.Status()
		log.Printf("maintenance loop: %d passes, %d full sweeps, totals %+v", st.Passes, st.Sweeps, st.Totals)
	}
	snap, _ := json.Marshal(sys.Metrics().Snapshot())
	log.Printf("uptime %s, final metrics: %s", time.Since(start).Round(time.Millisecond), snap)
}

// statusWriter captures the status code a handler wrote, and injects the
// request's cache disposition as a header at WriteHeader time — by then the
// serving layer has annotated the trace, and the headers are not yet sent.
type statusWriter struct {
	http.ResponseWriter
	tr     *serving.Trace
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	if w.tr != nil && w.tr.Disposition != serving.DispositionNone {
		w.Header().Set("X-Woc-Cache", string(w.tr.Disposition))
	}
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps h with per-endpoint observability: request counter,
// in-flight gauge, status-code counters, cumulative + rolling-window latency
// histograms, rolling error/shed counters, and the request trace (created
// here, annotated by the serving layer, finalized and retained here).
func instrument(reg *obs.Registry, traces *serving.TraceLog, alog *accessLog, name string, h http.HandlerFunc) http.HandlerFunc {
	requests := reg.Counter("http.req." + name)
	inflight := reg.Gauge("http.inflight")
	latency := reg.Histogram("http.latency." + name)
	rolling := reg.WindowedHistogram("http.window." + name)
	errsWin := reg.WindowedCounter("http.window.err." + name)
	shedWin := reg.WindowedCounter("http.window.shed." + name)
	return func(rw http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		start := time.Now()
		tr := serving.NewTrace(name)
		rw.Header().Set("X-Woc-Trace", tr.ID)
		sw := &statusWriter{ResponseWriter: rw, tr: tr, status: http.StatusOK}
		defer func() {
			d := time.Since(start)
			latency.ObserveDuration(d)
			rolling.ObserveDuration(d)
			inflight.Add(-1)
			reg.Counter(fmt.Sprintf("http.status.%s.%d", name, sw.status)).Inc()
			switch {
			case sw.status == http.StatusServiceUnavailable:
				shedWin.Inc()
			case sw.status >= 500:
				errsWin.Inc()
			}
			tr.Finish(sw.status, d, nil)
			traces.Record(tr)
			alog.log(tr)
		}()
		h(sw, r.WithContext(serving.WithTrace(r.Context(), tr)))
	}
}

// expvarOnce guards expvar.Publish, which panics on duplicate names when
// newMux is called more than once (tests).
var expvarOnce sync.Once

// newMux wires the JSON API over the serving layer, instrumenting every
// endpoint into the system's metrics registry. Each request gets a context
// deadline of reqTimeout; overload from the serving layer's admission
// control maps to 503 + Retry-After.
func newMux(sys *woc.System, svc *serving.Layer, loop *maintain.Loop, reqTimeout time.Duration, enablePprof bool, alog *accessLog) *http.ServeMux {
	reg := sys.Metrics()
	traces := svc.Traces()

	writeJSON := func(rw http.ResponseWriter, code int, v any) {
		// Encode first so a marshal failure can still change the status code;
		// the header must be written before the body.
		body, err := json.Marshal(v)
		if err != nil {
			log.Printf("encode: %v", err)
			code, body = http.StatusInternalServerError, []byte(`{"error":"encoding failed"}`)
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(code)
		rw.Write(body) //nolint:errcheck // client gone; nothing to do
	}
	fail := func(rw http.ResponseWriter, code int, err error) {
		writeJSON(rw, code, map[string]string{"error": err.Error()})
	}
	// failErr maps serving-layer errors to HTTP semantics: shed load is 503
	// with a Retry-After hint (the client should back off briefly, not
	// hammer), an expired deadline is 504, unknown ids are 404. The error is
	// also annotated onto the request trace so the slow-query log shows why
	// a request failed.
	failErr := func(rw http.ResponseWriter, r *http.Request, err error) {
		serving.TraceFromContext(r.Context()).SetError(err)
		switch {
		case errors.Is(err, serving.ErrOverloaded):
			rw.Header().Set("Retry-After", "1")
			fail(rw, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			fail(rw, http.StatusGatewayTimeout, err)
		case errors.Is(err, woc.ErrNotFound):
			fail(rw, http.StatusNotFound, err)
		default:
			fail(rw, http.StatusInternalServerError, err)
		}
	}
	kOf := func(r *http.Request) int {
		if k, err := strconv.Atoi(r.URL.Query().Get("k")); err == nil && k > 0 {
			return k
		}
		return 8
	}

	mux := http.NewServeMux()
	handle := func(name string, h http.HandlerFunc) {
		withDeadline := func(rw http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), reqTimeout)
			defer cancel()
			h(rw, r.WithContext(ctx))
		}
		mux.HandleFunc("/"+name, instrument(reg, traces, alog, name, withDeadline))
	}

	handle("healthz", func(rw http.ResponseWriter, r *http.Request) {
		// A degraded store still serves reads, but the instance should be
		// rotated out and restarted so recovery can rerun: report 503.
		store := sys.StoreHealth()
		code := http.StatusOK
		if store.Degraded != "" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(rw, code, map[string]any{
			"ok":    store.Degraded == "",
			"stats": sys.Stats(),
			"store": store,
			"epoch": sys.Epoch(),
			"cache": svc.CacheLen(),
		})
	})
	handle("search", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			fail(rw, http.StatusBadRequest, errors.New("missing q"))
			return
		}
		page, err := svc.Search(r.Context(), q, kOf(r))
		if err != nil {
			failErr(rw, r, err)
			return
		}
		writeJSON(rw, http.StatusOK, page)
	})
	handle("concepts", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			fail(rw, http.StatusBadRequest, errors.New("missing q"))
			return
		}
		hits, err := svc.ConceptSearch(r.Context(), q, kOf(r))
		if err != nil {
			failErr(rw, r, err)
			return
		}
		writeJSON(rw, http.StatusOK, hits)
	})
	handle("record", func(rw http.ResponseWriter, r *http.Request) {
		rec, err := svc.Record(r.Context(), r.URL.Query().Get("id"))
		if err != nil {
			failErr(rw, r, err)
			return
		}
		writeJSON(rw, http.StatusOK, rec)
	})
	handle("aggregate", func(rw http.ResponseWriter, r *http.Request) {
		page, err := svc.Aggregate(r.Context(), r.URL.Query().Get("id"))
		if err != nil {
			failErr(rw, r, err)
			return
		}
		writeJSON(rw, http.StatusOK, page)
	})
	handle("alternatives", func(rw http.ResponseWriter, r *http.Request) {
		recs, err := svc.Alternatives(r.Context(), r.URL.Query().Get("id"), kOf(r))
		if err != nil {
			failErr(rw, r, err)
			return
		}
		writeJSON(rw, http.StatusOK, recs)
	})
	handle("augmentations", func(rw http.ResponseWriter, r *http.Request) {
		recs, err := svc.Augmentations(r.Context(), r.URL.Query().Get("id"), kOf(r))
		if err != nil {
			failErr(rw, r, err)
			return
		}
		writeJSON(rw, http.StatusOK, recs)
	})
	handle("lineage", func(rw http.ResponseWriter, r *http.Request) {
		lines, err := svc.Lineage(r.Context(), r.URL.Query().Get("id"))
		if err != nil {
			failErr(rw, r, err)
			return
		}
		writeJSON(rw, http.StatusOK, lines)
	})

	// Observability surfaces. /metrics serves the registry snapshot as JSON,
	// or Prometheus text exposition with ?format=prometheus; /debug/vars
	// serves the same snapshot through expvar alongside cmdline/memstats.
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			obs.WritePrometheus(rw, reg.Snapshot())
			return
		}
		writeJSON(rw, http.StatusOK, reg.Snapshot())
	})
	// Trace surfaces: the per-endpoint slow-query log, and point lookup of
	// any trace ID a client just saw in X-Woc-Trace.
	mux.HandleFunc("/debug/slowlog", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, traces.Slowest())
	})
	mux.HandleFunc("/debug/maintain", func(rw http.ResponseWriter, r *http.Request) {
		if loop == nil {
			writeJSON(rw, http.StatusOK, map[string]any{"enabled": false})
			return
		}
		writeJSON(rw, http.StatusOK, map[string]any{
			"enabled": true, "status": loop.Status(), "epoch": sys.Epoch(),
		})
	})
	mux.HandleFunc("/debug/trace", func(rw http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			fail(rw, http.StatusBadRequest, errors.New("missing id"))
			return
		}
		tr, ok := traces.ByID(id)
		if !ok {
			fail(rw, http.StatusNotFound, errors.New("trace not in ring (retained for the last "+
				strconv.Itoa(traces.Len())+" requests)"))
			return
		}
		writeJSON(rw, http.StatusOK, tr)
	})
	expvarOnce.Do(func() {
		expvar.Publish("woc", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
