package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

var (
	once sync.Once
	tsys *woc.System
	tw   *webgen.World
)

func server(t *testing.T) (*webgen.World, *httptest.Server) {
	t.Helper()
	once.Do(func() {
		cfg := webgen.DefaultConfig()
		cfg.Restaurants = 30
		cfg.ReviewArticles = 10
		cfg.TVArticles = 2
		tw = webgen.Generate(cfg)
		sys, err := woc.Build(tw.Fetch, tw.SeedURLs(),
			woc.WithLocalDomain(tw.Cities(), webgen.Cuisines()))
		if err != nil {
			panic(err)
		}
		tsys = sys
	})
	srv := httptest.NewServer(newMux(tsys, true))
	t.Cleanup(srv.Close)
	return tw, srv
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, srv := server(t)
	var body struct {
		OK    bool `json:"ok"`
		Stats struct {
			RecordsStored int
		} `json:"stats"`
	}
	if code := getJSON(t, srv, "/healthz", &body); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !body.OK || body.Stats.RecordsStored == 0 {
		t.Errorf("body = %+v", body)
	}
}

func TestSearchEndpoint(t *testing.T) {
	w, srv := server(t)
	var r *webgen.Restaurant
	for _, cand := range w.Restaurants {
		if cand.Homepage != "" {
			r = cand
			break
		}
	}
	var page woc.Page
	q := url.QueryEscape(r.Name + " " + r.City)
	if code := getJSON(t, srv, "/search?q="+q, &page); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if page.Box == nil {
		t.Fatalf("no box for %q", r.Name)
	}
	if page.Box.Phone == "" || len(page.Results) == 0 {
		t.Errorf("page = %+v", page)
	}
	if code := getJSON(t, srv, "/search", nil); code != http.StatusBadRequest {
		t.Errorf("missing q status = %d", code)
	}
}

func TestConceptAndRecordEndpoints(t *testing.T) {
	w, srv := server(t)
	var hits []woc.Hit
	q := url.QueryEscape(w.Restaurants[0].Cuisine + " restaurants")
	if code := getJSON(t, srv, "/concepts?q="+q+"&k=5", &hits); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(hits) == 0 {
		t.Skip("no concept hits for this cuisine")
	}
	id := url.QueryEscape(hits[0].Record.ID)
	var rec woc.Record
	if code := getJSON(t, srv, "/record?id="+id, &rec); code != 200 {
		t.Fatalf("record status = %d", code)
	}
	if rec.Concept != "restaurant" {
		t.Errorf("record = %+v", rec)
	}
	var agg woc.Aggregation
	if code := getJSON(t, srv, "/aggregate?id="+id, &agg); code != 200 || agg.Title == "" {
		t.Errorf("aggregate status=%d agg=%+v", code, agg)
	}
	var lines []string
	if code := getJSON(t, srv, "/lineage?id="+id, &lines); code != 200 || len(lines) == 0 {
		t.Errorf("lineage status=%d lines=%d", code, len(lines))
	}
	var alts []woc.Suggestion
	if code := getJSON(t, srv, "/alternatives?id="+id, &alts); code != 200 {
		t.Errorf("alternatives status=%d", code)
	}
}

func TestNotFoundEndpoints(t *testing.T) {
	_, srv := server(t)
	for _, path := range []string{"/record?id=nope", "/aggregate?id=nope",
		"/lineage?id=nope", "/alternatives?id=nope", "/augmentations?id=nope"} {
		if code := getJSON(t, srv, path, nil); code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, code)
		}
	}
}

// TestErrorBodyIsValidJSON guards the writeJSON fix: error responses must be
// well-formed JSON (the old fmt.Sprintf path double-escaped quotes) and must
// carry the status code set before the body.
func TestErrorBodyIsValidJSON(t *testing.T) {
	_, srv := server(t)
	resp, err := http.Get(srv.URL + `/record?id=no"such"id`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not valid JSON: %v", err)
	}
	if !strings.Contains(body.Error, `no"such"id`) {
		t.Errorf("error = %q, want the raw id preserved", body.Error)
	}
}

// TestMetricsEndpoint drives traffic through instrumented handlers and
// checks that /metrics reports per-endpoint request counts, status-code
// counters, the in-flight gauge, and latency quantiles.
func TestMetricsEndpoint(t *testing.T) {
	w, srv := server(t)
	q := url.QueryEscape(w.Restaurants[0].Name + " " + w.Restaurants[0].City)
	const n = 5
	for i := 0; i < n; i++ {
		if code := getJSON(t, srv, "/search?q="+q, nil); code != 200 {
			t.Fatalf("search status = %d", code)
		}
	}
	getJSON(t, srv, "/record?id=nope", nil) // one 404 for the status counters

	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
			Max   float64 `json:"max"`
		} `json:"histograms"`
	}
	if code := getJSON(t, srv, "/metrics", &snap); code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	if got := snap.Counters["http.req.search"]; got < n {
		t.Errorf("http.req.search = %d, want >= %d", got, n)
	}
	if got := snap.Counters["http.status.search.200"]; got < n {
		t.Errorf("http.status.search.200 = %d, want >= %d", got, n)
	}
	if got := snap.Counters["http.status.record.404"]; got < 1 {
		t.Errorf("http.status.record.404 = %d, want >= 1", got)
	}
	if _, ok := snap.Gauges["http.inflight"]; !ok {
		t.Error("missing http.inflight gauge")
	}
	h, ok := snap.Histograms["http.latency.search"]
	if !ok || h.Count < n {
		t.Fatalf("http.latency.search = %+v", h)
	}
	if h.P50 <= 0 || h.P99 < h.P50 || h.Max < h.P99 {
		t.Errorf("latency quantiles inconsistent: %+v", h)
	}
	// The engine's own instruments flow into the same registry.
	if got := snap.Counters["search.queries"]; got < n {
		t.Errorf("search.queries = %d, want >= %d", got, n)
	}
	if got := snap.Counters["lrec.puts"]; got == 0 {
		t.Error("lrec.puts = 0, want build-time store traffic")
	}
	for _, name := range []string{"build.crawl", "build.extract", "build.resolve",
		"build.link", "build.index"} {
		if h := snap.Histograms[name]; h.Count == 0 {
			t.Errorf("missing pipeline stage histogram %s", name)
		}
	}
}

func TestDebugVarsAndPprof(t *testing.T) {
	_, srv := server(t)
	var vars struct {
		Woc *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"woc"`
	}
	if code := getJSON(t, srv, "/debug/vars", &vars); code != 200 {
		t.Fatalf("debug/vars status = %d", code)
	}
	if vars.Woc == nil {
		t.Fatal("expvar missing woc snapshot")
	}
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}
