package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"conceptweb/internal/serving"
	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

var (
	once sync.Once
	tsys *woc.System
	tw   *webgen.World
)

func buildOnce(t *testing.T) {
	t.Helper()
	once.Do(func() {
		cfg := webgen.DefaultConfig()
		cfg.Restaurants = 30
		cfg.ReviewArticles = 10
		cfg.TVArticles = 2
		tw = webgen.Generate(cfg)
		sys, err := woc.Build(tw.Fetch, tw.SeedURLs(),
			woc.WithLocalDomain(tw.Cities(), webgen.Cuisines()))
		if err != nil {
			panic(err)
		}
		tsys = sys
	})
}

func server(t *testing.T) (*webgen.World, *httptest.Server) {
	t.Helper()
	buildOnce(t)
	svc := serving.New(tsys, serving.Options{Metrics: tsys.Metrics()})
	srv := httptest.NewServer(newMux(tsys, svc, nil, 10*time.Second, true, nil))
	t.Cleanup(srv.Close)
	return tw, srv
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, srv := server(t)
	var body struct {
		OK    bool `json:"ok"`
		Stats struct {
			RecordsStored int
		} `json:"stats"`
	}
	if code := getJSON(t, srv, "/healthz", &body); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !body.OK || body.Stats.RecordsStored == 0 {
		t.Errorf("body = %+v", body)
	}
}

func TestSearchEndpoint(t *testing.T) {
	w, srv := server(t)
	var r *webgen.Restaurant
	for _, cand := range w.Restaurants {
		if cand.Homepage != "" {
			r = cand
			break
		}
	}
	var page woc.Page
	q := url.QueryEscape(r.Name + " " + r.City)
	if code := getJSON(t, srv, "/search?q="+q, &page); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if page.Box == nil {
		t.Fatalf("no box for %q", r.Name)
	}
	if page.Box.Phone == "" || len(page.Results) == 0 {
		t.Errorf("page = %+v", page)
	}
	if code := getJSON(t, srv, "/search", nil); code != http.StatusBadRequest {
		t.Errorf("missing q status = %d", code)
	}
}

func TestConceptAndRecordEndpoints(t *testing.T) {
	w, srv := server(t)
	var hits []woc.Hit
	q := url.QueryEscape(w.Restaurants[0].Cuisine + " restaurants")
	if code := getJSON(t, srv, "/concepts?q="+q+"&k=5", &hits); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(hits) == 0 {
		t.Skip("no concept hits for this cuisine")
	}
	id := url.QueryEscape(hits[0].Record.ID)
	var rec woc.Record
	if code := getJSON(t, srv, "/record?id="+id, &rec); code != 200 {
		t.Fatalf("record status = %d", code)
	}
	if rec.Concept != "restaurant" {
		t.Errorf("record = %+v", rec)
	}
	var agg woc.Aggregation
	if code := getJSON(t, srv, "/aggregate?id="+id, &agg); code != 200 || agg.Title == "" {
		t.Errorf("aggregate status=%d agg=%+v", code, agg)
	}
	var lines []string
	if code := getJSON(t, srv, "/lineage?id="+id, &lines); code != 200 || len(lines) == 0 {
		t.Errorf("lineage status=%d lines=%d", code, len(lines))
	}
	var alts []woc.Suggestion
	if code := getJSON(t, srv, "/alternatives?id="+id, &alts); code != 200 {
		t.Errorf("alternatives status=%d", code)
	}
}

func TestNotFoundEndpoints(t *testing.T) {
	_, srv := server(t)
	for _, path := range []string{"/record?id=nope", "/aggregate?id=nope",
		"/lineage?id=nope", "/alternatives?id=nope", "/augmentations?id=nope"} {
		if code := getJSON(t, srv, path, nil); code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, code)
		}
	}
}

// TestErrorBodyIsValidJSON guards the writeJSON fix: error responses must be
// well-formed JSON (the old fmt.Sprintf path double-escaped quotes) and must
// carry the status code set before the body.
func TestErrorBodyIsValidJSON(t *testing.T) {
	_, srv := server(t)
	resp, err := http.Get(srv.URL + `/record?id=no"such"id`)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not valid JSON: %v", err)
	}
	if !strings.Contains(body.Error, `no"such"id`) {
		t.Errorf("error = %q, want the raw id preserved", body.Error)
	}
}

// TestMetricsEndpoint drives traffic through instrumented handlers and
// checks that /metrics reports per-endpoint request counts, status-code
// counters, the in-flight gauge, and latency quantiles.
func TestMetricsEndpoint(t *testing.T) {
	w, srv := server(t)
	q := url.QueryEscape(w.Restaurants[0].Name + " " + w.Restaurants[0].City)
	const n = 5
	for i := 0; i < n; i++ {
		if code := getJSON(t, srv, "/search?q="+q, nil); code != 200 {
			t.Fatalf("search status = %d", code)
		}
	}
	getJSON(t, srv, "/record?id=nope", nil) // one 404 for the status counters

	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
			Max   float64 `json:"max"`
		} `json:"histograms"`
	}
	if code := getJSON(t, srv, "/metrics", &snap); code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	if got := snap.Counters["http.req.search"]; got < n {
		t.Errorf("http.req.search = %d, want >= %d", got, n)
	}
	if got := snap.Counters["http.status.search.200"]; got < n {
		t.Errorf("http.status.search.200 = %d, want >= %d", got, n)
	}
	if got := snap.Counters["http.status.record.404"]; got < 1 {
		t.Errorf("http.status.record.404 = %d, want >= 1", got)
	}
	if _, ok := snap.Gauges["http.inflight"]; !ok {
		t.Error("missing http.inflight gauge")
	}
	h, ok := snap.Histograms["http.latency.search"]
	if !ok || h.Count < n {
		t.Fatalf("http.latency.search = %+v", h)
	}
	if h.P50 <= 0 || h.P99 < h.P50 || h.Max < h.P99 {
		t.Errorf("latency quantiles inconsistent: %+v", h)
	}
	// The engine's own instruments flow into the same registry. The result
	// cache absorbs repeated identical queries, so the engine computes at
	// least once but need not see all n requests.
	if got := snap.Counters["search.queries"]; got < 1 {
		t.Errorf("search.queries = %d, want >= 1", got)
	}
	if got := snap.Counters["lrec.puts"]; got == 0 {
		t.Error("lrec.puts = 0, want build-time store traffic")
	}
	for _, name := range []string{"build.crawl", "build.extract", "build.resolve",
		"build.link", "build.index"} {
		if h := snap.Histograms[name]; h.Count == 0 {
			t.Errorf("missing pipeline stage histogram %s", name)
		}
	}
}

// slowSource wraps the real system but parks Search on a gate, so tests can
// hold the serving layer's only compute slot for as long as they need.
type slowSource struct {
	*woc.System
	gate chan struct{}
}

func (s *slowSource) Search(q string, k int) *woc.Page {
	<-s.gate
	return s.System.Search(q, k)
}

// TestOverloadSheds503WithRetryAfter saturates a one-slot serving layer and
// asserts the next request is shed quickly with 503 + Retry-After instead of
// queueing behind the stuck computation.
func TestOverloadSheds503WithRetryAfter(t *testing.T) {
	buildOnce(t)
	src := &slowSource{System: tsys, gate: make(chan struct{})}
	svc := serving.New(src, serving.Options{
		CacheSize:   -1, // force every request onto the compute path
		MaxInflight: 1,
		AdmitWait:   30 * time.Millisecond,
		Metrics:     tsys.Metrics(),
	})
	srv := httptest.NewServer(newMux(tsys, svc, nil, 10*time.Second, false, nil))
	defer srv.Close()

	holder := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/search?q=holder")
		if err == nil {
			resp.Body.Close()
		}
		holder <- err
	}()
	// Wait for the holder to occupy the slot: a /record probe sheds only
	// once the slot is taken.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/record?id=probe")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never saturated")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	resp, err := http.Get(srv.URL + "/search?q=shed+me")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("missing Retry-After header on shed response")
	}
	if elapsed > 2*time.Second {
		t.Errorf("shed took %v; must return within the admit wait, not queue", elapsed)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Errorf("shed body not a JSON error: %v %+v", err, body)
	}

	close(src.gate)
	if err := <-holder; err != nil {
		t.Fatalf("holder request failed: %v", err)
	}
	// Capacity restored: requests flow again.
	resp2, err := http.Get(srv.URL + "/search?q=recovered")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-recovery status = %d, want 200", resp2.StatusCode)
	}
}

// TestServingMetricsSurface drives cache traffic and checks the serving
// layer's instruments appear in /metrics.
func TestServingMetricsSurface(t *testing.T) {
	w, srv := server(t)
	q := url.QueryEscape(w.Restaurants[0].Name + " " + w.Restaurants[0].City)
	for i := 0; i < 4; i++ {
		if code := getJSON(t, srv, "/search?q="+q, nil); code != 200 {
			t.Fatalf("search status = %d", code)
		}
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if code := getJSON(t, srv, "/metrics", &snap); code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	if hits := snap.Counters["serve.hit.search"]; hits < 3 {
		t.Errorf("serve.hit.search = %d, want >= 3", hits)
	}
	if misses := snap.Counters["serve.miss.search"]; misses < 1 {
		t.Errorf("serve.miss.search = %d, want >= 1", misses)
	}
	if _, ok := snap.Gauges["serve.cache.size"]; !ok {
		t.Error("missing serve.cache.size gauge")
	}
	var health struct {
		Epoch uint64 `json:"epoch"`
		Cache int    `json:"cache"`
	}
	if code := getJSON(t, srv, "/healthz", &health); code != 200 {
		t.Fatalf("healthz status = %d", code)
	}
	if health.Epoch == 0 {
		t.Error("healthz epoch = 0, want >= 1 after build")
	}
	if health.Cache == 0 {
		t.Error("healthz cache entries = 0, want cached results")
	}
}

func TestDebugVarsAndPprof(t *testing.T) {
	_, srv := server(t)
	var vars struct {
		Woc *struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"woc"`
	}
	if code := getJSON(t, srv, "/debug/vars", &vars); code != 200 {
		t.Fatalf("debug/vars status = %d", code)
	}
	if vars.Woc == nil {
		t.Fatal("expvar missing woc snapshot")
	}
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}
