package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

var (
	once sync.Once
	tsys *woc.System
	tw   *webgen.World
)

func server(t *testing.T) (*webgen.World, *httptest.Server) {
	t.Helper()
	once.Do(func() {
		cfg := webgen.DefaultConfig()
		cfg.Restaurants = 30
		cfg.ReviewArticles = 10
		cfg.TVArticles = 2
		tw = webgen.Generate(cfg)
		sys, err := woc.Build(tw.Fetch, tw.SeedURLs(),
			woc.WithLocalDomain(tw.Cities(), webgen.Cuisines()))
		if err != nil {
			panic(err)
		}
		tsys = sys
	})
	srv := httptest.NewServer(newMux(tsys))
	t.Cleanup(srv.Close)
	return tw, srv
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, srv := server(t)
	var body struct {
		OK    bool `json:"ok"`
		Stats struct {
			RecordsStored int
		} `json:"stats"`
	}
	if code := getJSON(t, srv, "/healthz", &body); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !body.OK || body.Stats.RecordsStored == 0 {
		t.Errorf("body = %+v", body)
	}
}

func TestSearchEndpoint(t *testing.T) {
	w, srv := server(t)
	var r *webgen.Restaurant
	for _, cand := range w.Restaurants {
		if cand.Homepage != "" {
			r = cand
			break
		}
	}
	var page woc.Page
	q := url.QueryEscape(r.Name + " " + r.City)
	if code := getJSON(t, srv, "/search?q="+q, &page); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if page.Box == nil {
		t.Fatalf("no box for %q", r.Name)
	}
	if page.Box.Phone == "" || len(page.Results) == 0 {
		t.Errorf("page = %+v", page)
	}
	if code := getJSON(t, srv, "/search", nil); code != http.StatusBadRequest {
		t.Errorf("missing q status = %d", code)
	}
}

func TestConceptAndRecordEndpoints(t *testing.T) {
	w, srv := server(t)
	var hits []woc.Hit
	q := url.QueryEscape(w.Restaurants[0].Cuisine + " restaurants")
	if code := getJSON(t, srv, "/concepts?q="+q+"&k=5", &hits); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(hits) == 0 {
		t.Skip("no concept hits for this cuisine")
	}
	id := url.QueryEscape(hits[0].Record.ID)
	var rec woc.Record
	if code := getJSON(t, srv, "/record?id="+id, &rec); code != 200 {
		t.Fatalf("record status = %d", code)
	}
	if rec.Concept != "restaurant" {
		t.Errorf("record = %+v", rec)
	}
	var agg woc.Aggregation
	if code := getJSON(t, srv, "/aggregate?id="+id, &agg); code != 200 || agg.Title == "" {
		t.Errorf("aggregate status=%d agg=%+v", code, agg)
	}
	var lines []string
	if code := getJSON(t, srv, "/lineage?id="+id, &lines); code != 200 || len(lines) == 0 {
		t.Errorf("lineage status=%d lines=%d", code, len(lines))
	}
	var alts []woc.Suggestion
	if code := getJSON(t, srv, "/alternatives?id="+id, &alts); code != 200 {
		t.Errorf("alternatives status=%d", code)
	}
}

func TestNotFoundEndpoints(t *testing.T) {
	_, srv := server(t)
	for _, path := range []string{"/record?id=nope", "/aggregate?id=nope",
		"/lineage?id=nope", "/alternatives?id=nope", "/augmentations?id=nope"} {
		if code := getJSON(t, srv, path, nil); code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, code)
		}
	}
}
