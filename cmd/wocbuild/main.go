// Command wocbuild generates a synthetic web, runs the web-of-concepts
// construction pipeline over it, and prints build statistics. With -out it
// also persists the concept store durably.
//
// Two world profiles are supported:
//
//   - default: the 2011-page fixed world, built through the crawl pipeline
//     (core.Builder.Build). Output is byte-identical run to run.
//   - heavytail: a streamed heavy-tail world of -pages pages (a few huge
//     aggregators, a long tail of small sites) built through the
//     bounded-memory pipeline (core.Builder.BuildStream), optionally with a
//     disk-backed page store (-page-store) so page bytes never reside in
//     memory. This is the corpus-scale path; pair with -stats-json and
//     -rss-ceiling to record and enforce the memory envelope.
//
// Usage:
//
//	wocbuild [-seed 1] [-restaurants 120] [-workers N] [-shards N] [-out dir]
//	         [-world-profile default|heavytail] [-pages 100000]
//	         [-page-store dir] [-page-cache N]
//	         [-stats-json file] [-rss-ceiling bytes]
//	         [-v] [-cpuprofile build.pprof] [-memprofile mem.pprof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"conceptweb/internal/core"
	"conceptweb/internal/lrec"
	"conceptweb/internal/obs"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 1, "world generation seed")
	restaurants := flag.Int("restaurants", 120, "number of restaurants in the world (default profile)")
	profile := flag.String("world-profile", "default", "world profile: default (fixed world, crawl pipeline) or heavytail (streamed bounded-memory pipeline)")
	pages := flag.Int("pages", 100000, "approximate world size in pages (heavytail profile)")
	pageStoreDir := flag.String("page-store", "", "directory for a disk-backed page store (heavytail profile; empty = in-memory)")
	pageCache := flag.Int("page-cache", 0, "parsed-page LRU capacity of the disk page store (0 = default)")
	statsJSON := flag.String("stats-json", "", "append one JSON line of build statistics (pages, wall_ms, peak_rss_bytes, ...) to this file")
	rssCeiling := flag.Int64("rss-ceiling", 0, "exit non-zero if peak RSS exceeds this many bytes (0 = unenforced)")
	out := flag.String("out", "", "directory to persist the concept store (optional)")
	workers := flag.Int("workers", 0, "worker-pool size for the extract/link/index stages (0 = GOMAXPROCS); output is identical at any value")
	shards := flag.Int("shards", 0, "hash-partition count for the store and indexes (0 or 1 = single partition); output is identical at any value")
	verbose := flag.Bool("v", false, "periodic progress lines on stderr, plus the per-stage timing table and per-concept record counts")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the build to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the build) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC() // up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}()

	start := time.Now()
	var woc *core.WebOfConcepts
	var stats *core.BuildStats
	var reg *lrec.Registry
	var worldPages int

	switch *profile {
	case "default":
		cfg := webgen.DefaultConfig()
		cfg.Seed = *seed
		cfg.Restaurants = *restaurants
		w := webgen.Generate(cfg)
		worldPages = len(w.Pages())
		fmt.Printf("world: %d pages across %d sites (%d restaurants, %d papers, %d products)\n",
			len(w.Pages()), len(w.Sites), len(w.Restaurants), len(w.Papers), len(w.Products))

		reg = lrec.NewRegistry()
		webgen.RegisterConcepts(reg)
		cfgStd := core.StandardConfig(reg, w.Cities(), webgen.Cuisines())
		cfgStd.Workers = *workers
		cfgStd.Shards = *shards
		if *verbose {
			cfgStd.Progress = progressPrinter()
		}
		b := &core.Builder{Fetcher: w, Cfg: cfgStd}
		var err error
		woc, stats, err = b.Build(w.SeedURLs())
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		fmt.Printf("crawl:   %d pages fetched, %d failures\n", stats.PagesFetched, stats.FetchFailures)

	case "heavytail":
		scfg := webgen.HeavyTailConfig(*pages)
		scfg.Seed = *seed
		w := webgen.NewStreamWorld(scfg)
		worldPages = w.PlannedPages()
		fmt.Printf("world: %d pages planned across %d sites (heavy-tail profile, seed %d)\n",
			w.PlannedPages(), len(w.Plans()), *seed)

		reg = lrec.NewRegistry()
		webgen.RegisterScaleConcepts(reg)
		cfgScale := core.ScaleConfig(reg, w.Cities(), webgen.Cuisines())
		cfgScale.Workers = *workers
		cfgScale.Shards = *shards
		if *verbose {
			cfgScale.Progress = progressPrinter()
		}
		if *pageStoreDir != "" {
			ps, err := webgraph.OpenDiskStore(*pageStoreDir, webgraph.DiskOptions{CachePages: *pageCache})
			if err != nil {
				log.Fatalf("page store: %v", err)
			}
			cfgScale.PageStore = ps
		}
		b := &core.Builder{Fetcher: w, Cfg: cfgScale}
		var err error
		woc, stats, err = b.BuildStream(w)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		fmt.Printf("ingest:  %d pages streamed into the page store\n", stats.PagesFetched)

	default:
		log.Fatalf("unknown -world-profile %q (want default or heavytail)", *profile)
	}
	defer woc.Close()

	changed := woc.Reconcile("restaurant", core.PreferSupport)
	wall := time.Since(start)

	fmt.Printf("extract: %d candidates\n", stats.Candidates)
	fmt.Printf("resolve: %d records stored, %d candidates merged away\n",
		stats.RecordsStored, stats.ClustersMerged)
	fmt.Printf("link:    %d pages semantically linked, %d review records\n",
		stats.PagesLinked, stats.ReviewRecords)
	fmt.Printf("reconcile: %d records trimmed to constraints\n", changed)

	if *verbose {
		if stats.Trace != nil {
			fmt.Printf("\nworkers: %d\n%s\n", stats.Workers, stats.Trace.Table())
		}
		for _, c := range woc.Records.Concepts() {
			fmt.Printf("  %-12s %d records\n", c, woc.Records.CountByConcept(c))
		}
	}

	if *out != "" {
		persistRecords(woc, reg, *out, *shards)
	}

	rss := peakRSSBytes()
	fmt.Printf("build: %d pages in %s, peak rss %d MiB\n", stats.PagesFetched, wall.Round(time.Millisecond), rss>>20)

	if *statsJSON != "" {
		pageStore := "mem"
		if *pageStoreDir != "" {
			pageStore = "disk"
		}
		rec := map[string]any{
			"profile":        *profile,
			"pages_planned":  worldPages,
			"pages":          stats.PagesFetched,
			"wall_ms":        wall.Milliseconds(),
			"peak_rss_bytes": rss,
			"candidates":     stats.Candidates,
			"records_stored": stats.RecordsStored,
			"pages_linked":   stats.PagesLinked,
			"workers":        stats.Workers,
			"shards":         *shards,
			"page_store":     pageStore,
		}
		if ms := stageMillis(stats.Trace); len(ms) > 0 {
			rec["stage_ms"] = ms
		}
		appendStatsJSON(*statsJSON, rec)
	}
	if *rssCeiling > 0 && rss > *rssCeiling {
		log.Fatalf("peak rss %d bytes exceeds ceiling %d bytes", rss, *rssCeiling)
	}
}

// stageMillis flattens the build trace's top-level stages (crawl or ingest,
// extract, resolve, link, index) into a name → wall-time-ms map for the
// stats-json record, so the scaling curve shows where time goes per stage.
func stageMillis(tr *obs.TraceReport) map[string]int64 {
	if tr == nil {
		return nil
	}
	ms := make(map[string]int64, len(tr.Children))
	for _, c := range tr.Children {
		ms[c.Name] = c.Duration.Milliseconds()
	}
	return ms
}

// persistRecords writes every record to a durable lrec store at dir.
func persistRecords(woc *core.WebOfConcepts, reg *lrec.Registry, dir string, shards int) {
	durable, err := lrec.Open(dir, lrec.WithRegistry(reg), lrec.WithShards(shards))
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	if rec := durable.Recovery(); rec.SnapshotRecords > 0 || rec.LogFrames > 0 || rec.TornTail {
		fmt.Printf("store recovery: %d snapshot records, %d log frames replayed\n",
			rec.SnapshotRecords, rec.LogFrames)
		if rec.TornTail {
			fmt.Printf("store recovery: truncated %d-byte torn log tail (previous process crashed mid-append)\n",
				rec.TruncatedBytes)
		}
	}
	n := 0
	woc.Records.Scan(func(r *lrec.Record) bool {
		if err := durable.Put(r); err != nil {
			log.Printf("put %s: %v", r.ID, err)
			return true
		}
		n++
		return true
	})
	if err := durable.Compact(); err != nil {
		log.Fatalf("compact: %v", err)
	}
	if err := durable.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	fmt.Printf("persisted %d records to %s\n", n, dir)
}

// progressPrinter returns a core.Config.Progress callback that emits
// rate-limited progress lines on stderr: at most one every 2s, tagged with
// the current peak RSS so a watcher sees the memory envelope evolve live.
func progressPrinter() func(stage string, done, total int) {
	var mu sync.Mutex
	last := time.Now()
	return func(stage string, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if time.Since(last) < 2*time.Second {
			return
		}
		last = time.Now()
		if total > 0 {
			fmt.Fprintf(os.Stderr, "progress: %-8s %d/%d  rss=%dMiB\n", stage, done, total, peakRSSBytes()>>20)
		} else {
			fmt.Fprintf(os.Stderr, "progress: %-8s %d  rss=%dMiB\n", stage, done, peakRSSBytes()>>20)
		}
	}
}

// peakRSSBytes reports the process's peak resident set size. On Linux this
// is VmHWM from /proc/self/status (the kernel's high-water mark, which is
// what a container memory limit would enforce against); elsewhere it falls
// back to the Go runtime's view of memory obtained from the OS.
func peakRSSBytes() int64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			f := strings.Fields(line)
			if len(f) >= 2 {
				if kb, err := strconv.ParseInt(f[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// appendStatsJSON appends one JSON object per line to path, so repeated runs
// (e.g. make benchscale) accumulate a scaling curve.
func appendStatsJSON(path string, rec map[string]any) {
	b, err := json.Marshal(rec)
	if err != nil {
		log.Fatalf("stats-json: %v", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatalf("stats-json: %v", err)
	}
	defer f.Close()
	if _, err := f.Write(append(b, '\n')); err != nil {
		log.Fatalf("stats-json: %v", err)
	}
}
