// Command wocbuild generates the synthetic web, runs the full
// web-of-concepts construction pipeline over it, and prints build
// statistics. With -out it also persists the concept store durably.
//
// Usage:
//
//	wocbuild [-seed 1] [-restaurants 120] [-workers N] [-shards N] [-out dir]
//	         [-v] [-cpuprofile build.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"conceptweb/internal/core"
	"conceptweb/internal/lrec"
	"conceptweb/internal/webgen"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 1, "world generation seed")
	restaurants := flag.Int("restaurants", 120, "number of restaurants in the world")
	out := flag.String("out", "", "directory to persist the concept store (optional)")
	workers := flag.Int("workers", 0, "worker-pool size for the extract/link/index stages (0 = GOMAXPROCS); output is identical at any value")
	shards := flag.Int("shards", 0, "hash-partition count for the store and indexes (0 or 1 = single partition); output is identical at any value")
	verbose := flag.Bool("v", false, "print the per-stage timing table and per-concept record counts")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the build to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the build) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC() // up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}()

	cfg := webgen.DefaultConfig()
	cfg.Seed = *seed
	cfg.Restaurants = *restaurants
	w := webgen.Generate(cfg)
	fmt.Printf("world: %d pages across %d sites (%d restaurants, %d papers, %d products)\n",
		len(w.Pages()), len(w.Sites), len(w.Restaurants), len(w.Papers), len(w.Products))

	reg := lrec.NewRegistry()
	webgen.RegisterConcepts(reg)
	cfgStd := core.StandardConfig(reg, w.Cities(), webgen.Cuisines())
	cfgStd.Workers = *workers
	cfgStd.Shards = *shards
	b := &core.Builder{Fetcher: w, Cfg: cfgStd}
	woc, stats, err := b.Build(w.SeedURLs())
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	changed := woc.Reconcile("restaurant", core.PreferSupport)

	fmt.Printf("crawl:   %d pages fetched, %d failures\n", stats.PagesFetched, stats.FetchFailures)
	fmt.Printf("extract: %d candidates\n", stats.Candidates)
	fmt.Printf("resolve: %d records stored, %d candidates merged away\n",
		stats.RecordsStored, stats.ClustersMerged)
	fmt.Printf("link:    %d pages semantically linked, %d review records\n",
		stats.PagesLinked, stats.ReviewRecords)
	fmt.Printf("reconcile: %d records trimmed to constraints\n", changed)

	if *verbose {
		if stats.Trace != nil {
			fmt.Printf("\nworkers: %d\n%s\n", stats.Workers, stats.Trace.Table())
		}
		for _, c := range woc.Records.Concepts() {
			fmt.Printf("  %-12s %d records\n", c, woc.Records.CountByConcept(c))
		}
	}

	if *out != "" {
		durable, err := lrec.Open(*out, lrec.WithRegistry(reg), lrec.WithShards(*shards))
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		if rec := durable.Recovery(); rec.SnapshotRecords > 0 || rec.LogFrames > 0 || rec.TornTail {
			fmt.Printf("store recovery: %d snapshot records, %d log frames replayed\n",
				rec.SnapshotRecords, rec.LogFrames)
			if rec.TornTail {
				fmt.Printf("store recovery: truncated %d-byte torn log tail (previous process crashed mid-append)\n",
					rec.TruncatedBytes)
			}
		}
		n := 0
		woc.Records.Scan(func(r *lrec.Record) bool {
			if err := durable.Put(r); err != nil {
				log.Printf("put %s: %v", r.ID, err)
				return true
			}
			n++
			return true
		})
		if err := durable.Compact(); err != nil {
			log.Fatalf("compact: %v", err)
		}
		if err := durable.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
		fmt.Printf("persisted %d records to %s\n", n, *out)
	}
}
