// Command wocstudy reproduces the paper's §3 usage studies (E1–E4) by
// simulating user behaviour over the synthetic web and running the same
// log analyses the paper ran over Yahoo! Search and Toolbar logs. Each
// study prints the paper's reported numbers next to the measured ones.
//
// Usage:
//
//	wocstudy                 # all studies
//	wocstudy -study e1       # one study
package main

import (
	"flag"
	"fmt"
	"log"

	"conceptweb/internal/logsim"
	"conceptweb/internal/webgen"
)

func main() {
	log.SetFlags(0)
	study := flag.String("study", "all", "which study: e1|e2|e3|e4|all")
	seed := flag.Int64("seed", 1, "world seed")
	users := flag.Int("users", 200, "simulated users")
	flag.Parse()

	wcfg := webgen.DefaultConfig()
	wcfg.Seed = *seed
	w := webgen.Generate(wcfg)
	lcfg := logsim.DefaultConfig()
	lcfg.Users = *users
	logs := logsim.NewSimulator(w, lcfg).Run()
	fmt.Printf("simulated %d queries, %d trails over %d pages\n\n",
		len(logs.Queries), len(logs.Trails), len(w.Pages()))

	if *study == "e1" || *study == "all" {
		r := logsim.AnalyzeE1(logs, webgen.PrimaryAggregator)
		fmt.Println("E1 — Concepts vs. Search (clicked aggregator URLs)")
		fmt.Printf("  %-22s %8s %8s\n", "", "paper", "measured")
		fmt.Printf("  %-22s %7d%% %7.0f%%\n", "biz URLs", 59, 100*r.BizFrac)
		fmt.Printf("  %-22s %7d%% %7.0f%%\n", "search URLs", 19, 100*r.SearchFrac)
		fmt.Printf("  %-22s %7d%% %7.0f%%\n", "category URLs", 11, 100*r.CatFrac)
		fmt.Printf("  instance searches: paper 60–70%%, measured %.0f–%.0f%%\n",
			100*r.InstanceLow, 100*r.InstanceHigh)
		fmt.Printf("  set searches:      paper 10–20%%, measured %.0f–%.0f%%\n\n",
			100*r.SetLow, 100*r.SetHigh)
	}
	if *study == "e2" || *study == "all" {
		r := logsim.AnalyzeE2(logs, w)
		fmt.Println("E2 — Searching for Attributes of a Concept")
		fmt.Printf("  %d homepage-click queries; residual tokens:\n", r.HomepageQueries)
		paper := map[string]string{"menu": "3%", "coupons": "1.8%", "locations": "1.5%"}
		fmt.Printf("  %-12s %8s %9s\n", "token", "paper", "measured")
		for i, tf := range r.Tokens {
			if i >= 8 {
				break
			}
			p := paper[tf.Token]
			if p == "" {
				p = "—"
			}
			fmt.Printf("  %-12s %8s %8.1f%%\n", tf.Token, p, 100*tf.Frac)
		}
		fmt.Println()
	}
	if *study == "e3" || *study == "all" {
		r := logsim.AnalyzeE3(logs, webgen.PrimaryAggregator)
		fmt.Println("E3 — Value in Aggregation (biz-click queries)")
		fmt.Printf("  %-28s %8s %9s\n", "", "paper", "measured")
		fmt.Printf("  %-28s %7d%% %8.0f%%\n", "clicked >=1 other URL", 59, 100*r.AtLeast1Other)
		fmt.Printf("  %-28s %7d%% %8.0f%%\n\n", "clicked >=2 other URLs", 35, 100*r.AtLeast2Other)
	}
	if *study == "e4" || *study == "all" {
		r := logsim.AnalyzeE4(logs, w)
		fmt.Println("E4 — Concepts vs. Browsing (toolbar trails)")
		fmt.Printf("  %-30s %8s %9s\n", "", "paper", "measured")
		fmt.Printf("  %-30s %7s%% %8.1f%%\n", "visit preceded by search", "42", 100*r.SearchPreceded)
		fmt.Printf("  %-30s %7s%% %8.1f%%\n", "next page: location", "11.5", 100*r.NextLocationFrac)
		fmt.Printf("  %-30s %7s%% %8.1f%%\n", "next page: menu", "9", 100*r.NextMenuFrac)
		fmt.Printf("  %-30s %7s%% %8.1f%%\n", "next page: coupons", "1", 100*r.NextCouponsFrac)
		fmt.Printf("  %-30s %7s%% %8.1f%%\n", "trails with >1 restaurant", "10.5", 100*r.MultiInstance)
	}
}
