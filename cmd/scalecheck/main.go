// Command scalecheck guards the scaling shape of the build against
// regression. It compares a freshly measured benchscale curve (the JSON
// emitted by `make benchscale`) against a committed baseline curve
// (BENCH_PR10.json): for every page count present in both, the ratio of
// link+resolve wall time to the rest of the pipeline (ingest + extract +
// index) must not exceed the baseline's ratio by more than a slack factor.
//
// The stage-time *ratio* rather than absolute milliseconds makes the check
// host-speed independent — a slower CI runner scales every stage together,
// but a reintroduced super-linear matching or resolution path inflates
// link+resolve *relative* to the linear stages, which is exactly what this
// catches. (A plain share-of-wall bound saturates: when link+resolve is
// already most of the build, share x slack exceeds 100% and the check
// becomes vacuous; the odds ratio keeps its sensitivity.)
//
// Usage:
//
//	scalecheck -curve bench-scale-smoke.json -baseline BENCH_PR10.json
//	           [-slack 1.5] [-grace 0.2]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

type curve struct {
	Bench string `json:"bench"`
	Runs  []run  `json:"runs"`
}

type run struct {
	Profile      string           `json:"profile"`
	PagesPlanned int              `json:"pages_planned"`
	WallMS       int64            `json:"wall_ms"`
	PeakRSS      int64            `json:"peak_rss_bytes"`
	StageMS      map[string]int64 `json:"stage_ms"`
}

// stageRatio returns (link+resolve)/(ingest+crawl+extract+index) for a run,
// and false when the run carries no per-stage breakdown (curves recorded
// before stage_ms existed) or the linear stages measured zero.
func stageRatio(r run) (float64, bool) {
	if len(r.StageMS) == 0 {
		return 0, false
	}
	lr := r.StageMS["link"] + r.StageMS["resolve"]
	rest := r.StageMS["ingest"] + r.StageMS["crawl"] + r.StageMS["extract"] + r.StageMS["index"]
	if rest <= 0 {
		return 0, false
	}
	return float64(lr) / float64(rest), true
}

func load(path string) (*curve, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c curve
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &c, nil
}

func main() {
	log.SetFlags(0)
	curvePath := flag.String("curve", "bench-scale-smoke.json", "freshly measured scaling curve (make benchscale output)")
	basePath := flag.String("baseline", "BENCH_PR10.json", "committed baseline scaling curve")
	slack := flag.Float64("slack", 1.5, "allowed factor over the baseline link+resolve : linear-stage ratio")
	grace := flag.Float64("grace", 0.2, "absolute ratio grace added to the bound (absorbs timer noise on small stages)")
	flag.Parse()

	fresh, err := load(*curvePath)
	if err != nil {
		log.Fatalf("scalecheck: %v", err)
	}
	base, err := load(*basePath)
	if err != nil {
		log.Fatalf("scalecheck: %v", err)
	}

	baseByPages := make(map[int]run, len(base.Runs))
	for _, r := range base.Runs {
		baseByPages[r.PagesPlanned] = r
	}

	checked, failed := 0, 0
	for _, r := range fresh.Runs {
		ratio, ok := stageRatio(r)
		if !ok {
			log.Printf("scalecheck: skip %d pages: fresh run has no stage_ms breakdown", r.PagesPlanned)
			continue
		}
		b, found := baseByPages[r.PagesPlanned]
		if !found {
			log.Printf("scalecheck: skip %d pages: no baseline run at this size", r.PagesPlanned)
			continue
		}
		baseRatio, ok := stageRatio(b)
		if !ok {
			log.Printf("scalecheck: skip %d pages: baseline run has no stage_ms breakdown", r.PagesPlanned)
			continue
		}
		bound := baseRatio*(*slack) + *grace
		checked++
		status := "ok"
		if ratio > bound {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("scalecheck: %7d pages: link+resolve %.2fx the linear stages (baseline %.2fx, bound %.2fx) %s\n",
			r.PagesPlanned, ratio, baseRatio, bound, status)
	}
	if checked == 0 {
		log.Fatalf("scalecheck: no comparable runs between %s and %s", *curvePath, *basePath)
	}
	if failed > 0 {
		log.Fatalf("scalecheck: %d of %d sizes regressed past the link+resolve stage-ratio bound", failed, checked)
	}
	fmt.Printf("scalecheck: %d size(s) within bound\n", checked)
}
