// Command wocsearch builds the system over the synthetic web and answers
// queries: web search with a concept box (Figure 1 of the paper), concept
// search, or an aggregation page.
//
// Usage:
//
//	wocsearch -q "golden dragon grill cupertino"       # web search + box
//	wocsearch -concept -q "best italian san jose"      # concept search
//	wocsearch -aggregate <record-id>                   # aggregation page
package main

import (
	"flag"
	"fmt"
	"log"

	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 1, "world generation seed")
	q := flag.String("q", "", "query")
	concept := flag.Bool("concept", false, "run concept search instead of web search")
	aggregate := flag.String("aggregate", "", "record ID to build an aggregation page for")
	k := flag.Int("k", 8, "results to show")
	flag.Parse()

	cfg := webgen.DefaultConfig()
	cfg.Seed = *seed
	w := webgen.Generate(cfg)
	sys, err := woc.Build(w.Fetch, w.SeedURLs(), woc.WithLocalDomain(w.Cities(), webgen.Cuisines()))
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	switch {
	case *aggregate != "":
		page, err := sys.Aggregate(*aggregate)
		if err != nil {
			log.Fatalf("aggregate: %v", err)
		}
		fmt.Printf("== %s ==\n", page.Title)
		for k, v := range page.Attrs {
			fmt.Printf("  %-10s %s", k, v)
			if c := page.Conflicts[k]; len(c) > 0 {
				fmt.Printf("   (conflicts: %v)", c)
			}
			fmt.Println()
		}
		fmt.Println("sources:")
		for _, s := range page.Sources {
			fmt.Printf("  [%-10s trust=%.2f] %s\n", s.Kind, s.Trust, s.URL)
		}
		for i, r := range page.Reviews {
			fmt.Printf("review %d: %s\n", i+1, r)
		}
	case *concept:
		if *q == "" {
			log.Fatal("need -q")
		}
		for i, h := range sys.ConceptSearch(*q, *k) {
			fmt.Printf("%2d. [%5.2f] %s — %s, %s (%s)\n", i+1, h.Score,
				h.Record.Attrs["name"], h.Record.Attrs["street"],
				h.Record.Attrs["city"], h.Record.ID)
		}
	default:
		if *q == "" {
			log.Fatal("need -q")
		}
		page := sys.Search(*q, *k)
		if page.Box != nil {
			fmt.Printf("┌─ %s", page.Box.Name)
			if page.Box.Rating != "" {
				fmt.Printf("  ★ %s", page.Box.Rating)
			}
			fmt.Println()
			fmt.Printf("│  %s · %s\n", page.Box.Address, page.Box.Phone)
			if page.Box.Homepage != "" {
				fmt.Printf("│  official site: %s\n", page.Box.Homepage)
			}
			for _, r := range page.Box.Reviews {
				snippet := r
				if len(snippet) > 90 {
					snippet = snippet[:90] + "…"
				}
				fmt.Printf("│  “%s”\n", snippet)
			}
			fmt.Println("└─")
		}
		for i, d := range page.Results {
			marker := "  "
			if d.IsHomepage {
				marker = "🏠"
			}
			fmt.Printf("%2d. %s [%5.2f] %s\n", i+1, marker, d.Score, d.URL)
		}
		if len(page.Assistance) > 0 {
			fmt.Printf("related searches: %v\n", page.Assistance)
		}
	}
}
