// Shopping example: the product domain of §2.3 and §5.4–5.5 — extract the
// camera catalog, follow the D40-style augmentation relation (camera →
// battery), and run the concept-bidding ad marketplace over a simulated
// shopping session.
package main

import (
	"fmt"
	"log"
	"strings"

	"conceptweb/internal/ads"
	"conceptweb/internal/extract"
	"conceptweb/internal/lrec"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

func main() {
	log.SetFlags(0)
	world := webgen.Generate(webgen.DefaultConfig())

	// Crawl and extract the shop catalog.
	store := webgraph.NewStore()
	(&webgraph.Crawler{Fetcher: world, Store: store}).Crawl([]string{webgen.ShopHost + "/"})
	det := &extract.KeyValueExtractor{Concept: "product",
		Labels: extract.ProductLabels(), NameKey: "name"}
	regst := lrec.NewRegistry()
	webgen.RegisterConcepts(regst)
	recs := lrec.NewMemStore(lrec.WithRegistry(regst))
	n := 0
	store.Scan(func(p *webgraph.Page) bool {
		for _, c := range det.Extract(p) {
			seq := recs.NextSeq()
			if err := recs.Put(c.ToRecord(c.SynthesizeID(), seq)); err == nil {
				n++
			}
		}
		return true
	})
	fmt.Printf("extracted %d product records from %s\n\n", n, webgen.ShopHost)

	// Pick a camera with accessories from ground truth and show the
	// augmentation chain through the extracted store.
	var camera *webgen.Product
	var battery *webgen.Product
	for _, p := range world.Products {
		if p.AccessoryOf != "" && strings.Contains(p.Kind, "battery") {
			if cam, ok := world.ProductByID(p.AccessoryOf); ok {
				camera, battery = cam, p
				break
			}
		}
	}
	if camera == nil {
		for _, p := range world.Products {
			if p.AccessoryOf != "" {
				cam, _ := world.ProductByID(p.AccessoryOf)
				camera, battery = cam, p
				break
			}
		}
	}
	if camera == nil {
		log.Fatal("no camera with accessories in world")
	}
	fmt.Printf("== %s (%s) ==\n", camera.Name, camera.Price)
	fmt.Printf("augmentation (the NB-7L pattern): %s (%s)\n\n", battery.Name, battery.Price)

	// Find the extracted camera record.
	var camRec *lrec.Record
	for _, r := range recs.ByConcept("product") {
		if strings.EqualFold(r.Get("name"), camera.Name) {
			camRec = r
			break
		}
	}
	if camRec == nil {
		log.Fatal("camera record not extracted")
	}
	fmt.Printf("extracted record: %s\n  brand=%s model=%s price=%s\n\n",
		camRec.ID, camRec.Get("brand"), camRec.Get("model"), camRec.Get("price"))

	// The ad marketplace: a keyword bidder vs. a concept bidder competing
	// for a navigational camera query.
	inv := ads.NewInventory()
	inv.Add(ads.Ad{
		ID: "kw-generic", Advertiser: "MegaCamera Outlet", Bid: 1.2,
		Creative: "Cameras up to 40% off!", Keywords: []string{"camera", "deal"},
	})
	inv.Add(ads.Ad{
		ID: "concept-accessories", Advertiser: camera.Brand + " Accessories Store", Bid: 1.0,
		Creative: "Official " + camera.Model + " batteries and bags",
		Targets:  []ads.Target{{Concept: "product", Key: "model", Value: camera.Model}},
		Keywords: []string{"battery"},
	})
	ctx := ads.Context{
		Query:  strings.ToLower(camera.Name),
		Record: camRec,
		Interests: map[string]float64{
			"concept:product": 0.9, "kind:camera": 0.7,
		},
	}
	fmt.Printf("ad auction for query %q:\n", ctx.Query)
	for i, p := range ads.Auction(inv, ctx, 2) {
		fmt.Printf("  slot %d: %s — %q (relevance %.2f, pays $%.2f per click)\n",
			i+1, p.Ad.Advertiser, p.Ad.Creative, p.Relevance, p.Price)
	}
}
