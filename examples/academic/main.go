// Academic example: the academic-domain pipeline of §4 on scholarly data —
// domain-centric list extraction of publications, the trained sequence
// tagger parsing free-form citation strings from personal homepages, and
// collective entity matching that reconciles the two views of each paper.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"conceptweb/internal/extract"
	"conceptweb/internal/lrec"
	"conceptweb/internal/match"
	"conceptweb/internal/webgen"
	"conceptweb/internal/webgraph"
)

func main() {
	log.SetFlags(0)
	cfg := webgen.DefaultConfig()
	cfg.Authors = 30
	cfg.Papers = 60
	world := webgen.Generate(cfg)

	// Crawl the academic sites.
	store := webgraph.NewStore()
	crawler := &webgraph.Crawler{Fetcher: world, Store: store}
	fetched, _ := crawler.Crawl([]string{webgen.ScholarHost + "/"})
	for _, site := range world.Sites {
		if strings.HasPrefix(site.Host, "people.") {
			crawler.Crawl([]string{site.Host + "/"})
		}
	}
	fmt.Printf("crawled %d+ academic pages\n", fetched)

	// 1. Structured view: domain-centric list extraction on scholarhub.
	venues := []string{"PODS", "SIGMOD", "VLDB", "ICDE", "KDD", "WWW", "WSDM", "CIDR"}
	le := &extract.ListExtractor{Domain: extract.PublicationDomain(venues)}
	var structured []*extract.Candidate
	store.Scan(func(p *webgraph.Page) bool {
		if p.Host == webgen.ScholarHost {
			structured = append(structured, le.Extract(p)...)
		}
		return true
	})
	fmt.Printf("structured extraction: %d publication candidates from %s\n",
		len(structured), webgen.ScholarHost)

	// 2. Semantic view: train the sequence tagger on style-0 citations from
	// scholarhub's ground-truthish rendering, then parse personal homepages.
	tagger := extract.NewTagger([]string{
		extract.LabelAuthor, extract.LabelTitle, extract.LabelVenue,
		extract.LabelYear, extract.LabelOther})
	for _, v := range venues {
		tagger.Gazetteer[strings.ToLower(v)] = "venue"
	}
	tagger.Train(trainingCitations(world), 8)
	ce := &extract.CitationExtractor{Tagger: tagger}
	var semantic []*extract.Candidate
	store.Scan(func(p *webgraph.Page) bool {
		if strings.HasPrefix(p.Host, "people.") {
			semantic = append(semantic, ce.Extract(p)...)
		}
		return true
	})
	fmt.Printf("semantic extraction:  %d citation candidates from homepages\n", len(semantic))

	// 3. Reconcile the two views with collective matching.
	var recs []*lrec.Record
	seq := uint64(0)
	for _, c := range append(structured, semantic...) {
		seq++
		recs = append(recs, c.ToRecord(c.SynthesizeID()+fmt.Sprintf(":%d", seq), seq))
	}
	matcher := match.NewMatcher(match.PublicationComparators())
	clusters := match.Resolve(recs, matcher, match.CollectiveOptions{
		MaxRounds: 3,
		Blockers: []func(*lrec.Record) string{
			match.NameTokenBlock,
			func(r *lrec.Record) string { return r.Get("year") },
		},
	})
	fmt.Printf("entity matching:      %d candidates -> %d resolved publications\n\n",
		len(recs), len(clusters))

	// Print a sample author profile assembled from the resolved records.
	author := world.Authors[0]
	fmt.Printf("== profile: %s (%s) ==\n", author.Name, author.Affiliation)
	var titles []string
	for _, pid := range author.PaperIDs {
		if p, ok := world.PaperByID(pid); ok {
			titles = append(titles, p.Title)
		}
	}
	sort.Strings(titles)
	found := 0
	for _, title := range titles {
		var best *lrec.Record
		for _, cl := range clusters {
			if strings.EqualFold(cl.Rep.Get("title"), title) {
				best = cl.Rep
				break
			}
		}
		if best != nil {
			found++
			fmt.Printf("  ✓ %s — %s %s (from %d source records)\n",
				best.Get("title"), best.Get("venue"), best.Get("year"),
				len(best.All("title"))+1)
		} else {
			fmt.Printf("  ✗ %s (not recovered)\n", title)
		}
	}
	fmt.Printf("recovered %d/%d of the author's publications\n", found, len(titles))
}

// trainingCitations builds labeled sequences from the world's papers in the
// default citation style (the "few labeled examples" supervision budget).
func trainingCitations(w *webgen.World) []extract.Tagged {
	var out []extract.Tagged
	for _, p := range w.Papers {
		if len(out) >= 80 {
			break
		}
		var names []string
		for _, aid := range p.AuthorIDs {
			if a, ok := w.AuthorByID(aid); ok {
				names = append(names, a.Name)
			}
		}
		authors := strings.Join(names, ", ")
		full := fmt.Sprintf("%s. %s. %s %d.", authors, p.Title, p.Venue, p.Year)
		toks := extract.TokenizeCitation(full)
		labels := make([]string, len(toks))
		mark := func(part, label string) {
			pt := extract.TokenizeCitation(part)
			for i := 0; i+len(pt) <= len(toks); i++ {
				ok := true
				for j := range pt {
					if toks[i+j] != pt[j] {
						ok = false
						break
					}
				}
				if ok {
					for j := range pt {
						labels[i+j] = label
					}
				}
			}
		}
		for i := range labels {
			labels[i] = extract.LabelOther
		}
		mark(p.Title, extract.LabelTitle)
		mark(authors, extract.LabelAuthor)
		mark(p.Venue, extract.LabelVenue)
		mark(fmt.Sprintf("%d", p.Year), extract.LabelYear)
		out = append(out, extract.Tagged{Tokens: toks, Labels: labels})
	}
	return out
}
