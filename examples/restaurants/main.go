// Restaurants example: the paper's local-domain scenarios end to end —
// the "mexican food chicago best salsa" research session (§3), aggregation
// pages with conflicting sources surfaced (§3, §7.3), alternatives
// recommendation (§5.4), and lineage explanations (§7.3).
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

func main() {
	log.SetFlags(0)
	world := webgen.Generate(webgen.DefaultConfig())
	sys, err := woc.Build(world.Fetch, world.SeedURLs(),
		woc.WithLocalDomain(world.Cities(), webgen.Cuisines()))
	if err != nil {
		log.Fatal(err)
	}

	// --- The "best salsa" session: a set search with a dish constraint.
	fmt.Println("== concept search: best mexican mountain view ==")
	hits := sys.ConceptSearch("best mexican mountain view", 5)
	if len(hits) == 0 {
		hits = sys.ConceptSearch("best mexican san jose", 5)
	}
	for i, h := range hits {
		fmt.Printf("%d. %s (%s) — rating %s, %s\n", i+1,
			h.Record.Attrs["name"], h.Record.Attrs["cuisine"],
			h.Record.Attrs["rating"], h.Record.Attrs["street"])
	}
	if len(hits) == 0 {
		log.Fatal("no concept hits")
	}
	top := hits[0].Record

	// --- The aggregation page: every source about the winner, with trust.
	fmt.Printf("\n== aggregation page: %s ==\n", top.Attrs["name"])
	agg, err := sys.Aggregate(top.ID)
	if err != nil {
		log.Fatal(err)
	}
	for _, key := range []string{"name", "street", "city", "zip", "phone", "cuisine", "rating", "hours"} {
		if v := agg.Attrs[key]; v != "" {
			line := fmt.Sprintf("  %-8s %s", key, v)
			if c := agg.Conflicts[key]; len(c) > 0 {
				line += fmt.Sprintf("    !! conflicting values from other sources: %v", c)
			}
			fmt.Println(line)
		}
	}
	fmt.Println("  sources:")
	for _, s := range agg.Sources {
		fmt.Printf("    [%-10s trust %.2f] %s\n", s.Kind, s.Trust, s.URL)
	}
	for i, r := range agg.Reviews {
		if i == 2 {
			break
		}
		fmt.Printf("  review: %.90s…\n", r)
	}

	// --- Alternatives: other places that might displace this one.
	fmt.Printf("\n== alternatives to %s ==\n", top.Attrs["name"])
	alts, err := sys.Alternatives(top.ID, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range alts {
		fmt.Printf("  %s (%s, rating %s) — %s\n", a.Record.Attrs["name"],
			a.Record.Attrs["cuisine"], a.Record.Attrs["rating"], a.Reason)
	}

	// --- Data-driven taxonomy (§2.3): cluster the extracted records into a
	// cuisine-like organization with no curated hierarchy.
	fmt.Println("\n== data-driven sub-concepts (cuisine+menu clustering) ==")
	cats := sys.Categories("restaurant", 10, "cuisine", "menu")
	names := make([]string, 0, len(cats))
	for name := range cats {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 6 {
		names = names[:6]
	}
	for _, name := range names {
		fmt.Printf("  %-28s %d instances\n", name, len(cats[name]))
	}

	// --- Lineage: why do we believe the phone number?
	fmt.Printf("\n== lineage of %s ==\n", top.Attrs["name"])
	lines, err := sys.Lineage(top.ID)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "phone=") || strings.HasPrefix(l, "zip=") {
			fmt.Println("  " + l)
			shown++
		}
	}
	if shown == 0 && len(lines) > 0 {
		fmt.Println("  " + lines[0])
	}
}
