// Quickstart: build a web of concepts over the synthetic web and run one
// concept-aware search — the Figure 1 experience in a dozen lines.
package main

import (
	"fmt"
	"log"

	"conceptweb/internal/webgen"
	"conceptweb/woc"
)

func main() {
	log.SetFlags(0)

	// 1. A web to build from. Here the deterministic synthetic web; in a
	// real deployment this is an HTTP fetcher and a seed list.
	cfg := webgen.DefaultConfig()
	cfg.Restaurants = 60
	world := webgen.Generate(cfg)

	// 2. Build: crawl -> extract -> resolve -> link -> index.
	sys, err := woc.Build(world.Fetch, world.SeedURLs(),
		woc.WithLocalDomain(world.Cities(), webgen.Cuisines()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built: %+v\n\n", sys.Stats())

	// 3. Search for a specific restaurant the way the paper's §5.1 example
	// searches for "gochi cupertino".
	var query string
	for _, r := range world.Restaurants {
		if r.Homepage != "" {
			query = r.Name + " " + r.City
			break
		}
	}
	page := sys.Search(query, 5)
	fmt.Printf("query: %q\n", query)
	if page.Box != nil {
		fmt.Printf("concept box: %s\n  address: %s\n  phone:   %s\n  site:    %s\n",
			page.Box.Name, page.Box.Address, page.Box.Phone, page.Box.Homepage)
		for _, rv := range page.Box.Reviews {
			fmt.Printf("  review:  %.80s…\n", rv)
		}
	}
	fmt.Println("results:")
	for i, d := range page.Results {
		tag := ""
		if d.IsHomepage {
			tag = "  <- official homepage"
		}
		fmt.Printf("  %d. %s%s\n", i+1, d.URL, tag)
	}
}
