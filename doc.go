// Package conceptweb is a from-scratch Go reproduction of "A Web of
// Concepts" (Dalvi et al., PODS 2009): the lrec concept store, the
// domain-centric extraction stack, entity matching, concept-aware search,
// session/browse optimization, advertising, and a synthetic web plus log
// simulator that stand in for the paper's proprietary evaluation substrate.
//
// The public API lives in conceptweb/woc; the experiment harness is the
// benchmark suite in bench_test.go (see EXPERIMENTS.md for the experiment
// index and DESIGN.md for the system inventory).
package conceptweb
